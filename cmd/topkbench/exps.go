package main

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"time"

	topk "repro"
	"repro/internal/aurs"
	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/flgroup"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/point"
	"repro/internal/pst"
	"repro/internal/ram"
	"repro/internal/shengtao"
	"repro/internal/sketch"
	"repro/internal/verify"
	"repro/internal/workload"
	"repro/internal/workload/driver"
)

func logB(n, b int) float64 {
	v := math.Log(float64(n)) / math.Log(float64(b))
	if v < 1 {
		return 1
	}
	return v
}

func lg2(n int) float64 {
	v := math.Log2(float64(n))
	if v < 1 {
		return 1
	}
	return v
}

// newDisk allocates a bench machine: the pool holds 256 blocks, a
// realistic M/B ratio that lets O(1)-block node records be re-read from
// memory within one operation while still forcing disk traffic across
// operations.
func newDisk(b int) *em.Disk { return em.NewDisk(em.Config{B: b, M: 256 * b}) }

func coreOpts() core.Options {
	return core.Options{Regime: core.RegimePolylog, PolylogF: 8, PolylogLeafCap: 2048}
}

// coldQuery measures mean cold-cache read I/Os of fn over reps runs.
func coldQuery(d *em.Disk, reps int, fn func(i int)) float64 {
	d.DropCache()
	base := d.Stats()
	for i := 0; i < reps; i++ {
		fn(i)
		d.DropCache()
	}
	return float64(d.Stats().Sub(base).Reads) / float64(reps)
}

// ---------------------------------------------------------------- E1

func e1(quick bool) {
	ns := []int{1 << 13, 1 << 15, 1 << 17}
	ks := []int{1, 16, 256, 2048, 8192}
	if quick {
		ns = ns[:2]
		ks = []int{1, 256, 4096}
	}
	const B = 64
	fmt.Printf("%10s %8s %12s %14s %10s\n", "n", "k", "read I/Os", "logB n + k/B", "component")
	for _, n := range ns {
		d := newDisk(B)
		gen := workload.NewGen(int64(n))
		pts := gen.Uniform(n, 1e6)
		ix := core.Bulk(d, coreOpts(), pts)
		for _, k := range ks {
			rng := rand.New(rand.NewSource(int64(k)))
			reads := coldQuery(d, 5, func(int) {
				x1 := rng.Float64() * 4e5
				ix.Query(x1, x1+5e5, k)
			})
			comp := "§3.3"
			if k >= ix.KThreshold() {
				comp = "§2"
			}
			fmt.Printf("%10d %8d %12.1f %14.1f %10s\n",
				n, k, reads, logB(n, B)+float64(k)/B, comp)
		}
	}
	fmt.Println("shape check: within a column, cost grows ~additively in k/B; down a column, ~log_B n.")
}

// ---------------------------------------------------------------- E2

func e2(quick bool) {
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	if quick {
		ns = ns[:2]
	}
	const B = 64
	fmt.Printf("%10s %14s %16s %12s %12s\n",
		"n", "ours I/Os/op", "baseline I/Os/op", "logB n", "log²B n")
	for _, n := range ns {
		gen := workload.NewGen(int64(n))
		pts := gen.Uniform(n+2000, 1e6)

		d1 := newDisk(B)
		ix := core.Bulk(d1, coreOpts(), pts[:n])
		d1.DropCache()
		b1 := d1.Stats()
		for _, p := range pts[n : n+2000] {
			ix.Insert(p)
		}
		d1.DropCache() // count write-backs still sitting in the pool
		ours := float64(d1.Stats().Sub(b1).IOs()) / 2000

		d2 := newDisk(B)
		base := shengtao.Bulk(d2, shengtao.Options{K: B * int(lg2(n))}, pts[:n])
		d2.DropCache()
		b2 := d2.Stats()
		for _, p := range pts[n : n+2000] {
			base.Insert(p)
		}
		d2.DropCache()
		theirs := float64(d2.Stats().Sub(b2).IOs()) / 2000

		lb := logB(n, B)
		fmt.Printf("%10d %14.1f %16.1f %12.2f %12.2f\n", n, ours, theirs, lb, lb*lb)
	}
	fmt.Println("shape check: ours tracks log_B n; the [14]-style baseline grows with K = B·lg n per level.")
}

// ---------------------------------------------------------------- E3

func e3(quick bool) {
	const B, n = 16, 1 << 16
	d := newDisk(B)
	gen := workload.NewGen(3)
	pts := gen.Uniform(n, 1e6)
	p := pst.Bulk(d, pst.Options{}, pts)
	ks := []int{1, 16, 128, 1024, 4096, 16384}
	if quick {
		ks = []int{1, 128, 4096}
	}
	thr := B * int(lg2(n))
	fmt.Printf("B=%d, n=%d, B·lg n = %d\n", B, n, thr)
	fmt.Printf("%8s %12s %14s %10s\n", "k", "read I/Os", "lg n + k/B", "regime")
	for _, k := range ks {
		rng := rand.New(rand.NewSource(int64(k)))
		reads := coldQuery(d, 5, func(int) {
			x1 := rng.Float64() * 2e5
			p.Query(x1, x1+7e5, k)
		})
		reg := "k < B·lg n (served by §3.3 in the composition)"
		if k >= thr {
			reg = "k ≥ B·lg n (the §2 regime: O(k/B) dominates)"
		}
		fmt.Printf("%8d %12.1f %14.1f   %s\n", k, reads, lg2(n)+float64(k)/B, reg)
	}
}

// ---------------------------------------------------------------- E4

func e4(quick bool) {
	const B, n = 8, 4000
	gen := workload.NewGen(4)
	pts := gen.Adversarial(n, 1e5)
	trials := 300
	if quick {
		trials = 100
	}
	fmt.Printf("%6s %10s %12s\n", "φ", "queries", "exact top-k")
	for _, phi := range []int{1, 2, 4, 8, 16} {
		d := newDisk(B)
		p := pst.Bulk(d, pst.Options{Phi: phi}, pts)
		oracle := verify.NewOracle(pts)
		okCnt := 0
		rng := rand.New(rand.NewSource(int64(phi)))
		for i := 0; i < trials; i++ {
			x1 := rng.Float64() * 9e4
			x2 := x1 + rng.Float64()*3e4
			k := rng.Intn(200) + 1
			if verify.SameSet(p.Query(x1, x2, k), oracle.TopK(x1, x2, k)) {
				okCnt++
			}
		}
		fmt.Printf("%6d %10d %12s\n", phi, trials,
			fmt.Sprintf("%d/%d", okCnt, trials))
	}
	fmt.Println("Lemma 2 proves φ=16 suffices; failures, when present, appear only below it.")
}

// ---------------------------------------------------------------- E5

func e5(quick bool) {
	ops := 6000
	if quick {
		ops = 2000
	}
	d := newDisk(16)
	p := pst.New(d, pst.Options{TrackTokens: true})
	gen := workload.NewGen(5)
	violations, checks := 0, 0
	var live []point.P
	for i, u := range gen.Mix(ops, 400, 0.45, 1e6) {
		if u.Insert != nil {
			p.Insert(*u.Insert)
			live = append(live, *u.Insert)
		} else {
			p.Delete(*u.Delete)
			for j := range live {
				if live[j] == *u.Delete {
					live = append(live[:j], live[j+1:]...)
					break
				}
			}
		}
		if i%97 == 0 {
			checks++
			if err := p.CheckInvariants(); err != nil {
				violations++
				fmt.Printf("  op %d: %v\n", i, err)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		violations++
	}
	checks++
	fmt.Printf("updates=%d, invariant checks=%d, violations=%d (Lemma 3 holds)\n",
		ops, checks, violations)
}

// ---------------------------------------------------------------- E6

type countedSet struct {
	vals  []float64
	rank  *int
	maxc  *int
	slopR *rand.Rand
}

func (s countedSet) Len() int { return len(s.vals) }
func (s countedSet) Max() float64 {
	*s.maxc++
	return s.vals[0]
}
func (s countedSet) Rank(rho float64) float64 {
	*s.rank++
	lo := int(math.Ceil(rho))
	hi := 2*lo - 1
	r := lo + s.slopR.Intn(hi-lo+1)
	if r > len(s.vals) {
		r = len(s.vals)
	}
	return s.vals[r-1]
}

func e6(quick bool) {
	ms := []int{4, 16, 64, 256}
	if quick {
		ms = ms[:3]
	}
	fmt.Printf("%6s %8s %12s %12s %14s\n", "m", "k", "Rank calls", "Max calls", "rank/k ratio")
	for _, m := range ms {
		rng := rand.New(rand.NewSource(int64(m)))
		var sets []aurs.Set
		var all []float64
		rankCalls, maxCalls := 0, 0
		for i := 0; i < m; i++ {
			n := 8*m + rng.Intn(4*m)
			vals := make([]float64, n)
			for j := range vals {
				vals[j] = rng.Float64()
				all = append(all, vals[j])
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
			sets = append(sets, countedSet{vals: vals, rank: &rankCalls, maxc: &maxCalls, slopR: rng})
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(all)))
		for _, k := range []int{m / 2, 2 * m} {
			if k < 1 {
				k = 1
			}
			rankCalls, maxCalls = 0, 0
			v := aurs.Select(sets, 2, k)
			r := sort.Search(len(all), func(i int) bool { return all[i] < v })
			fmt.Printf("%6d %8d %12d %12d %14.2f\n", m, k, rankCalls, maxCalls, float64(r)/float64(k))
		}
	}
	fmt.Printf("bound: rank/k ≤ c' = %d; Rank calls ≤ 2m (geometric rounds)\n", aurs.Bound(2))
}

// ---------------------------------------------------------------- E7

func e7(quick bool) {
	confs := []struct{ f, l int }{{4, 64}, {8, 256}, {16, 1024}}
	if quick {
		confs = confs[:2]
	}
	const B = 64
	fmt.Printf("%6s %6s %8s %14s %14s %12s\n", "f", "l", "f·l", "query I/Os", "update I/Os", "logB(fl)")
	for _, c := range confs {
		d := newDisk(B)
		g := flgroup.New(d, c.f, c.l)
		rng := rand.New(rand.NewSource(int64(c.f)))
		for i := 1; i <= c.f; i++ {
			for j := 0; j < c.l*3/4; j++ {
				g.Insert(i, rng.Float64()+float64(i*c.l+j))
			}
		}
		q := coldQuery(d, 20, func(i int) {
			g.Select(1, c.f, i%(c.l/2)+1)
		})
		d.DropCache()
		base := d.Stats()
		const ops = 400
		for i := 0; i < ops; i++ {
			si := i%c.f + 1
			v := rng.Float64() + float64(1e7+i)
			g.Insert(si, v)
			g.Delete(si, v)
			if i%8 == 7 {
				d.DropCache() // flush write-backs so updates hit disk
			}
		}
		d.DropCache()
		u := float64(d.Stats().Sub(base).IOs()) / (2 * ops)
		fmt.Printf("%6d %6d %8d %14.1f %14.1f %12.2f\n",
			c.f, c.l, c.f*c.l, q, u, logB(c.f*c.l, B))
	}
}

// ---------------------------------------------------------------- E8

func e8(quick bool) {
	trials := 400
	if quick {
		trials = 150
	}
	fmt.Printf("%6s %10s %12s %12s %10s\n", "base", "trials", "worst ratio", "mean ratio", "bound c3")
	for _, base := range []int{2, 4} {
		rng := rand.New(rand.NewSource(int64(base)))
		worst, sum := 0.0, 0.0
		for t := 0; t < trials; t++ {
			m := rng.Intn(10) + 1
			var sketches []sketch.Sketch
			var all []float64
			for i := 0; i < m; i++ {
				n := rng.Intn(400) + 1
				vals := make([]float64, n)
				for j := range vals {
					vals[j] = rng.Float64()
					all = append(all, vals[j])
				}
				sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
				sketches = append(sketches, sketch.Build(vals, base))
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(all)))
			k := rng.Intn(len(all)) + 1
			x := sketch.Merge(sketches, k)
			r := len(all)
			if !math.IsInf(x, -1) {
				r = sort.Search(len(all), func(i int) bool { return all[i] < x })
			}
			ratio := float64(r) / float64(k)
			sum += ratio
			if ratio > worst {
				worst = ratio
			}
		}
		fmt.Printf("%6d %10d %12.2f %12.2f %10d\n",
			base, trials, worst, sum/float64(trials), sketch.MergeBound(base))
	}
}

// ---------------------------------------------------------------- E9

func e9(quick bool) {
	confs := []struct{ B, f, l int }{{256, 8, 100}, {1024, 32, 400}, {4096, 64, 1200}}
	if quick {
		confs = confs[:2]
	}
	fmt.Printf("%8s %6s %6s %14s %14s %12s %10s\n",
		"B", "f", "l", "sketch bits", "prefix bits", "block bits", "fits")
	for _, c := range confs {
		d := em.NewDisk(em.Config{B: c.B, M: 32 * c.B})
		g := flgroup.New(d, c.f, c.l)
		rng := rand.New(rand.NewSource(int64(c.B)))
		for i := 1; i <= c.f; i++ {
			for j := 0; j < c.l; j++ {
				g.Insert(i, rng.Float64()+float64(i*c.l+j))
			}
		}
		sb, pb := g.SketchBits()
		blk := 64 * c.B
		fits := sb <= blk && pb <= blk
		fmt.Printf("%8d %6d %6d %14d %14d %12d %10v\n", c.B, c.f, c.l, sb, pb, blk, fits)

		// Lemma 8's point: a batch of prefix-rank conversions costs one
		// block read. Measure a Select (reads sketch block once).
		d.DropCache()
		before := d.Stats().Reads
		g.Select(1, c.f, 5)
		fmt.Printf("         one Select read the compressed block(s) + B-tree: %d reads\n",
			d.Stats().Reads-before)
	}
}

// ---------------------------------------------------------------- E10

func e10(quick bool) {
	ns := []int{1 << 13, 1 << 15, 1 << 17}
	if quick {
		ns = ns[:2]
	}
	const B = 64
	fmt.Printf("%10s %8s %14s %14s %14s %10s\n",
		"n", "n/B", "PST blocks", "§3.3 blocks", "core blocks", "core/(n/B)")
	for _, n := range ns {
		gen := workload.NewGen(int64(n))
		pts := gen.Uniform(n, 1e6)

		d1 := newDisk(B)
		pst.Bulk(d1, pst.Options{}, pts)
		pstBlocks := d1.Stats().BlocksLive

		d3 := newDisk(B)
		core.Bulk(d3, coreOpts(), pts)
		coreBlocks := d3.Stats().BlocksLive

		fmt.Printf("%10d %8d %14d %14d %14d %10.1f\n",
			n, n/B, pstBlocks, coreBlocks-pstBlocks, coreBlocks,
			float64(coreBlocks)/float64(n/B))
	}
	fmt.Println("shape check: the ratio column is flat — space is O(n/B).")
}

// ---------------------------------------------------------------- E11

func e11(quick bool) {
	const B, n = 64, 1 << 15
	d := newDisk(B)
	gen := workload.NewGen(11)
	pts := gen.Uniform(n, 1e6)
	ix := core.Bulk(d, coreOpts(), pts)
	fmt.Printf("n=%d, B=%d → k-threshold B·lg n = %d, small-k regime %s\n\n",
		n, B, ix.KThreshold(), ix.CurrentRegime())
	fmt.Printf("%8s %18s\n", "k", "serving component")
	for _, k := range []int{1, 64, 512, ix.KThreshold() - 1, ix.KThreshold(), 4 * ix.KThreshold()} {
		comp := "§3.3 selection + 3-sided reduction"
		if k >= ix.KThreshold() {
			comp = "§2 priority search tree"
		}
		fmt.Printf("%8d %18s\n", k, comp)
	}
	fmt.Println("\nauto-regime table (which small-k structure §1.2 picks):")
	fmt.Printf("%8s %10s %14s %s\n", "B", "lg N", "lg⁶N vs B", "component")
	for _, b := range []int{8, 64, 1024, 1 << 20} {
		l := lg2(2 * n)
		six := math.Pow(l, 6)
		comp := "§3.3 (B < lg⁶N)"
		if float64(b) >= six {
			comp = "[14] (B ≥ lg⁶N: its lg²_B n is already logarithmic)"
		}
		fmt.Printf("%8d %10.0f %14.3g %s\n", b, l, six/float64(b), comp)
	}
}

// ---------------------------------------------------------------- E12

func e12(quick bool) {
	// Figure 2: heaps rooted at Π nodes concatenated by a binary heap
	// over their roots; selection sees one combined heap.
	d := newDisk(16)
	mk := func(keys ...float64) heap.Source {
		entries := make([]heap.Entry, len(keys))
		for i, k := range keys {
			entries[i] = heap.Entry{Ref: int64(i), Key: k}
		}
		return heap.NewExternal(d, "fig2", entries)
	}
	// The paper's Figure 2 keys.
	h1 := mk(10, 5, 8, 1)
	h2 := mk(15, 2)
	h3 := mk(10, 5)
	cat := heap.Concat(d, "fig2cat", []heap.Source{h1, h2, h3})
	top := heap.TopKeys(cat, 8)
	fmt.Printf("figure 2 reproduction: concatenated heap drains as %v\n", top)
	want := []float64{15, 10, 10, 8, 5, 5, 2, 1}
	ok := len(top) == len(want)
	for i := range want {
		if ok && top[i] != want[i] {
			ok = false
		}
	}
	fmt.Printf("matches the multiset of Figure 2's keys: %v\n\n", ok)

	// Figure 1: T̂ concatenation — verified structurally by the pst
	// package's invariant checker on a small instance.
	gen := workload.NewGen(12)
	p := pst.Bulk(newDisk(8), pst.Options{Branch: 4}, gen.Uniform(64, 1e3))
	err := p.CheckInvariants()
	fmt.Printf("figure 1 (T̂ = base tree ⧺ secondary binary trees): invariants on a 64-point instance: %v\n",
		errString(err))
}

func errString(err error) string {
	if err == nil {
		return "hold"
	}
	return err.Error()
}

// ---------------------------------------------------------------- E14

func e14(quick bool) {
	const B, n = 32, 1 << 15
	gen := workload.NewGen(14)
	pts := gen.Uniform(n, 1e6)
	reps := 10
	if quick {
		reps = 4
	}

	fmt.Println("(a) buffer-pool size M/B: cold query cost sensitivity (PST, k=1024)")
	fmt.Printf("%10s %12s\n", "M/B frames", "read I/Os")
	for _, frames := range []int{8, 64, 256, 1024} {
		d := em.NewDisk(em.Config{B: B, M: frames * B})
		p := pst.Bulk(d, pst.Options{}, pts)
		rng := rand.New(rand.NewSource(int64(frames)))
		reads := coldQuery(d, reps, func(int) {
			x1 := rng.Float64() * 2e5
			p.Query(x1, x1+7e5, 1024)
		})
		fmt.Printf("%10d %12.1f\n", frames, reads)
	}

	fmt.Println("\n(b) φ: query cost vs the Lemma 2 constant (correctness shown in E4)")
	fmt.Printf("%6s %12s\n", "φ", "read I/Os")
	for _, phi := range []int{2, 4, 8, 16} {
		d := newDisk(B)
		p := pst.Bulk(d, pst.Options{Phi: phi}, pts)
		rng := rand.New(rand.NewSource(int64(phi)))
		reads := coldQuery(d, reps, func(int) {
			x1 := rng.Float64() * 2e5
			p.Query(x1, x1+7e5, 1024)
		})
		fmt.Printf("%6d %12.1f\n", phi, reads)
	}

	fmt.Println("\n(c) adaptive early termination (beyond the paper; identical answers)")
	fmt.Printf("%10s %12s\n", "mode", "read I/Os")
	for _, adaptive := range []bool{false, true} {
		d := newDisk(B)
		p := pst.Bulk(d, pst.Options{Adaptive: adaptive}, pts)
		rng := rand.New(rand.NewSource(99))
		reads := coldQuery(d, reps, func(int) {
			x1 := rng.Float64() * 2e5
			p.Query(x1, x1+7e5, 1024)
		})
		mode := "paper"
		if adaptive {
			mode = "adaptive"
		}
		fmt.Printf("%10s %12.1f\n", mode, reads)
	}

	fmt.Println("\n(d) sketch base: pivots per sketch vs merge approximation (see E8 for ratios)")
	fmt.Printf("%6s %14s %12s\n", "base", "pivots(l=1024)", "bound c3")
	for _, base := range []int{2, 3, 4} {
		fmt.Printf("%6d %14d %12d\n", base, sketch.NumPivots(1024, base), sketch.MergeBound(base))
	}
}

// ---------------------------------------------------------------- E13

func e13(quick bool) {
	ns := []int{1 << 14, 1 << 17}
	if !quick {
		ns = append(ns, 1<<19)
	}
	fmt.Printf("%10s %8s %16s %12s\n", "n", "k", "comparisons", "lg n + k")
	for _, n := range ns {
		gen := workload.NewGen(int64(n))
		tr := ram.Bulk(gen.Uniform(n, 1e6))
		for _, k := range []int{1, 64, 1024} {
			rng := rand.New(rand.NewSource(int64(k)))
			tr.Comparisons = 0
			const reps = 30
			for i := 0; i < reps; i++ {
				x1 := rng.Float64() * 4e5
				tr.Query(x1, x1+4e5, k)
			}
			fmt.Printf("%10d %8d %16d %12.0f\n",
				n, k, tr.Comparisons/reps, lg2(n)+float64(k))
		}
	}
}

// ---------------------------------------------------------------- E15

// e15 measures the serving layer through the public topk.Store
// interface (API v1): query throughput of per-call TopK vs the
// batched QueryBatch fan-out, per backend and goroutine count. The
// batch path amortizes the topology lock and goroutine setup, which
// is where its advantage over a loop of TopK calls comes from.
func e15(quick bool) {
	n := 1 << 15
	ops := 20000
	if quick {
		n = 1 << 13
		ops = 4000
	}
	gen := workload.NewGen(51)
	pts := make([]topk.Result, 0, n)
	for _, p := range gen.Uniform(n, 1e6) {
		pts = append(pts, topk.Result{X: p.X, Score: p.Score})
	}
	cfg := topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048}
	sharded, err := topk.LoadSharded(topk.ShardedConfig{Config: cfg, Shards: 8}, pts)
	if err != nil {
		panic(err)
	}
	queries := gen.Queries(256, 1e6, 0.0005, 0.02, 64)
	fmt.Printf("%22s %6s %12s\n", "mode", "g", "qps")
	for _, g := range []int{1, 4, 16} {
		g := g
		var st topk.Store = sharded
		perCall := benchRun("e15", fmt.Sprintf("sharded TopK g=%d", g), func() workload.Throughput {
			return workload.RunConcurrent(g, ops, queries, func(q workload.QuerySpec) {
				st.TopK(q.X1, q.X2, q.K)
			})
		})
		fmt.Printf("%22s %6d %12.0f\n", "sharded TopK", g, perCall.QPS())
		batched := benchRun("e15", fmt.Sprintf("sharded QueryBatch/16 g=%d", g), func() workload.Throughput {
			return driver.RunBatched(st, g, ops, 16, queries)
		})
		fmt.Printf("%22s %6d %12.0f\n", "sharded QueryBatch/16", g, batched.QPS())
	}
	// The sequential backend as the single-machine baseline (one
	// goroutine: an Index is not concurrency-safe).
	single, err := topk.Load(cfg, pts)
	if err != nil {
		panic(err)
	}
	res := benchRun("e15", "index QueryBatch/16 g=1", func() workload.Throughput {
		return driver.RunBatched(single, 1, ops, 16, queries)
	})
	fmt.Printf("%22s %6d %12.0f\n", "index QueryBatch/16", 1, res.QPS())

	// Instrumentation overhead: the same g=16 TopK run with the obs
	// recording the serving middleware adds per request — one endpoint
	// histogram observation plus one op-timer — versus bare Store calls.
	// The histograms are striped atomics with no locks or allocation, so
	// the budget is ≤5% of qps; the ratio below is the check.
	tel := obs.New(obs.Options{})
	var st topk.Store = sharded
	g := 16
	off := benchRun("e15", "obs-off TopK g=16", func() workload.Throughput {
		return workload.RunConcurrent(g, ops, queries, func(q workload.QuerySpec) {
			st.TopK(q.X1, q.X2, q.K)
		})
	})
	on := benchRun("e15", "obs-on TopK g=16", func() workload.Throughput {
		return workload.RunConcurrent(g, ops, queries, func(q workload.QuerySpec) {
			done := tel.TimeOp("topk")
			st.TopK(q.X1, q.X2, q.K)
			done()
			tel.HTTP.Observe("topk", time.Microsecond)
		})
	})
	overhead := 100 * (off.QPS() - on.QPS()) / off.QPS()
	fmt.Printf("obs overhead at g=16: off %.0f qps, on %.0f qps (%.1f%% — budget 5%%)\n",
		off.QPS(), on.QPS(), overhead)

	// Write-path telemetry overhead: the write path topkd mounts —
	// topk.Batched over a sharded store — driven by 16 concurrent
	// writers inserting fresh points, telemetry off vs on. Telemetry
	// costs one value-histogram observation, one latency observation
	// and one atomic reason increment PER GROUP (not per op), so it
	// amortizes across the group against the real ApplyBatch flush;
	// the budget is the same ≤5%. Each leg gets its own backend (same
	// seed load) and a disjoint fresh key range, so the two runs do
	// identical insert work.
	ingestLeg := func(name string, disable bool, base float64) workload.Throughput {
		backend, err := topk.LoadSharded(topk.ShardedConfig{Config: cfg, Shards: 8}, pts)
		if err != nil {
			panic(err)
		}
		bt, err := topk.NewBatched(backend, topk.BatchedConfig{DisableTelemetry: disable})
		if err != nil {
			panic(err)
		}
		defer bt.Close()
		var seq atomic.Int64
		return benchRun("e15", name, func() workload.Throughput {
			return workload.RunConcurrent(g, ops, queries, func(q workload.QuerySpec) {
				i := float64(seq.Add(1))
				if err := bt.Insert(base+i, base+i); err != nil {
					panic(err)
				}
			})
		})
	}
	ingOff := ingestLeg("ingest-telemetry off g=16", true, 2e6)
	ingOn := ingestLeg("ingest-telemetry on g=16", false, 8e6)
	ingOverhead := 100 * (ingOff.QPS() - ingOn.QPS()) / ingOff.QPS()
	fmt.Printf("ingest telemetry overhead at g=16: off %.0f qps, on %.0f qps (%.1f%% — budget 5%%)\n",
		ingOff.QPS(), ingOn.QPS(), ingOverhead)
}

// ---------------------------------------------------------------- E16

// e16 measures the shard lifecycle under delete-heavy churn: bulk
// load a full 8-shard fleet, delete 95% of the points, then measure
// query throughput — with the delete-triggered merge policy enabled
// vs disabled (MinMerge < 0). Without merges the fleet stays stranded
// at 8 near-empty shards, each still paying its fixed overhead
// (buffer-pool floor of 2B words, fan-out goroutines, lock
// acquisitions); with merges the survivors coalesce and per-query
// cost tracks the live set again.
func e16(quick bool) {
	// Sizing: survivors per shard must land below the merge triggers
	// (MinMerge floor = MinSplit/2 = 128 here) or the experiment
	// demonstrates nothing — n/20/8 = 102 at full size, 25 at -quick.
	n := 1 << 14
	ops := 12000
	if quick {
		n = 1 << 12
		ops = 3000
	}
	gen := workload.NewGen(61)
	pts := make([]topk.Result, 0, n)
	for _, p := range gen.Uniform(n, 1e6) {
		pts = append(pts, topk.Result{X: p.X, Score: p.Score})
	}
	cfg := topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048}
	queries := gen.Queries(256, 1e6, 0.0005, 0.02, 64)

	fmt.Printf("%10s %8s %8s %8s %12s\n", "merges", "shards", "n live", "#merged", "qps (g=8)")
	for _, enabled := range []bool{false, true} {
		scfg := topk.ShardedConfig{Config: cfg, Shards: 8, MinSplit: 256}
		if !enabled {
			scfg.MinMerge = -1
		}
		st, err := topk.LoadSharded(scfg, pts)
		if err != nil {
			panic(err)
		}
		// Delete 95% in batches, the serving-path shape that triggers
		// the merge hook on the batch unlock path.
		del := make([]topk.BatchOp, 0, n-n/20)
		for i, p := range pts {
			if i%20 != 0 {
				del = append(del, topk.BatchOp{Delete: true, X: p.X, Score: p.Score})
			}
		}
		for len(del) > 0 {
			chunk := del
			if len(chunk) > 512 {
				chunk = del[:512]
			}
			for i, err := range st.ApplyBatch(chunk) {
				if err != nil {
					panic(fmt.Sprintf("delete %d: %v", i, err))
				}
			}
			del = del[len(chunk):]
		}
		if err := st.CheckInvariants(); err != nil {
			panic(err)
		}
		res := workload.RunConcurrent(8, ops, queries, func(q workload.QuerySpec) {
			st.TopK(q.X1, q.X2, q.K)
		})
		mode := "enabled"
		if !enabled {
			mode = "disabled"
		}
		fmt.Printf("%10s %8d %8d %8d %12.0f\n", mode, st.NumShards(), st.Len(), st.Merges(), res.QPS())
	}
	fmt.Println("shape check: with merges enabled the shard count collapses toward the shrunken live set.")
}

// ---------------------------------------------------------------- E17

// e17 measures what the epoch-snapshot refactor bought: query
// throughput while concurrent writers churn the fleet hard enough to
// keep triggering splits, merges and rebalances.
//
// "snapshot" is the shipped read path — TopK pins an immutable
// topology snapshot and holds no topology lock during fan-out.
// "rlock" emulates the pre-refactor discipline through a wrapper
// RWMutex: every read holds a read lock for its whole fan-out and
// every topology change takes the write lock, so a single rebalance
// stalls behind in-flight reads and (Go RWMutexes prefer writers)
// stalls every read arriving after it. The emulation reproduces the
// contention shape, not the old code byte for byte; the acceptance
// bar is that snapshot reads under writers are no worse than the
// lock-based routing they replaced.
func e17(quick bool) {
	n := 1 << 15
	readOps := 20000
	if quick {
		n = 1 << 13
		readOps = 4000
	}
	gen := workload.NewGen(71)
	pts := make([]topk.Result, 0, n)
	for _, p := range gen.Uniform(n, 1e6) {
		pts = append(pts, topk.Result{X: p.X, Score: p.Score})
	}
	cfg := topk.ShardedConfig{
		Config:   topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048},
		Shards:   8,
		MinSplit: 256,
	}
	queries := gen.Queries(256, 1e6, 0.0005, 0.02, 64)

	fmt.Printf("%10s %8s %12s %8s\n", "routing", "writers", "qps (g=8)", "epoch")
	for _, writers := range []int{0, 2, 8} {
		for _, mode := range []string{"snapshot", "rlock"} {
			st, err := topk.LoadSharded(cfg, pts)
			if err != nil {
				panic(err)
			}
			var gate sync.RWMutex // the rlock emulation; unused by snapshot mode
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Disjoint position/score bands per writer, outside the
					// preload domain, so churn never collides with reads'
					// data or other writers.
					wgen := workload.NewGen(int64(100 + w))
					lo := 2e6 + float64(w)*1e6
					round := 0
					for {
						select {
						case <-stop:
							return
						default:
						}
						ins := make([]topk.BatchOp, 0, 64)
						del := make([]topk.BatchOp, 0, 64)
						for _, p := range wgen.Uniform(64, 1e6) {
							ins = append(ins, topk.BatchOp{X: lo + p.X, Score: 2 + float64(w) + p.Score/2})
							del = append(del, topk.BatchOp{Delete: true, X: lo + p.X, Score: 2 + float64(w) + p.Score/2})
						}
						st.ApplyBatch(ins)
						st.ApplyBatch(del)
						if round++; round%8 == 0 {
							// The lifecycle event that made the old read lock
							// hurt: a full re-partition.
							if mode == "rlock" {
								gate.Lock()
								st.Rebalance(8)
								gate.Unlock()
							} else {
								st.Rebalance(8)
							}
						}
					}
				}(w)
			}
			read := func(q workload.QuerySpec) {
				if mode == "rlock" {
					gate.RLock()
					defer gate.RUnlock()
				}
				st.TopK(q.X1, q.X2, q.K)
			}
			// The rlock emulation under writer churn runs at ~60 qps by
			// design — it exists to show the contrast, not to be measured
			// precisely. Full readOps there would take minutes per config;
			// a tenth still saturates the lock and stabilizes the rate.
			ops := readOps
			if mode == "rlock" && writers > 0 {
				ops = readOps / 10
			}
			res := benchRun("e17", fmt.Sprintf("%s w=%d", mode, writers), func() workload.Throughput {
				return workload.RunConcurrent(8, ops, queries, read)
			})
			close(stop)
			wg.Wait()
			// Epoch counts the topology snapshots the run published — the
			// rebalances the readers raced.
			fmt.Printf("%10s %8d %12.0f %8d\n", mode, writers, res.QPS(), st.Epoch())
		}
	}
	fmt.Println("shape check: snapshot qps holds as writers rise; rlock qps dips when rebalances queue behind reads.")
}
