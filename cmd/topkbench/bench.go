package main

// Machine-readable benchmark output: -json makes every serving-layer
// experiment (e15, e17, e18) also write a BENCH_<exp>.json with one row
// per measured configuration — qps, ns/op and allocs/op — so CI can
// archive the numbers per commit and the performance trajectory of the
// repo is a diffable artifact instead of scrollback.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/workload"
)

// jsonOut mirrors the -json flag (main).
var jsonOut bool

// quickMode mirrors the -quick flag (main). Recorded in the JSON so
// the benchgate refuses to diff a quick run against a full baseline —
// the sweep sizes differ and every number with them.
var quickMode bool

// outDir mirrors the -out flag (main): where BENCH_<exp>.json files
// land. Defaults to the working directory; the benchgate points it at
// a scratch dir so a fresh run never clobbers the committed baselines.
var outDir = "."

// benchRow is one measured configuration of one experiment.
type benchRow struct {
	Name        string  `json:"name"`
	Goroutines  int     `json:"goroutines"`
	Ops         int     `json:"ops"`
	QPS         float64 `json:"qps"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchRows accumulates rows per experiment id while it runs.
var benchRows = map[string][]benchRow{}

// benchRun runs one measurement and records it under exp. Allocations
// are the process-wide Mallocs delta across the run divided by ops —
// concurrent background allocation (GC, other goroutines) leaks in, so
// treat allocs/op as a trend signal, not an exact count.
func benchRun(exp, name string, f func() workload.Throughput) workload.Throughput {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res := f()
	runtime.ReadMemStats(&m1)
	ops := res.Ops
	if ops < 1 {
		ops = 1
	}
	benchRecord(exp, name, res, float64(m1.Mallocs-m0.Mallocs)/float64(ops))
	return res
}

// benchRecord appends one already-measured row. Experiments that
// interleave several measurements (so one MemStats bracket cannot
// isolate a row — e19) measure their own Mallocs delta and record
// through this.
func benchRecord(exp, name string, res workload.Throughput, allocsPerOp float64) {
	ops := res.Ops
	if ops < 1 {
		ops = 1
	}
	benchRows[exp] = append(benchRows[exp], benchRow{
		Name:        name,
		Goroutines:  res.Goroutines,
		Ops:         res.Ops,
		QPS:         res.QPS(),
		NsPerOp:     float64(res.Elapsed.Nanoseconds()) / float64(ops),
		AllocsPerOp: allocsPerOp,
	})
}

// writeBench writes BENCH_<exp>.json into outDir when -json is set
// and the experiment recorded rows.
func writeBench(exp string) {
	rows := benchRows[exp]
	if !jsonOut || len(rows) == 0 {
		return
	}
	data, err := json.MarshalIndent(map[string]any{"experiment": exp, "quick": quickMode, "rows": rows}, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench json %s: %v\n", exp, err)
		os.Exit(1)
	}
	path := filepath.Join(outDir, fmt.Sprintf("BENCH_%s.json", exp))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench json %s: %v\n", exp, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d rows)\n", path, len(rows))
}
