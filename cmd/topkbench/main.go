// Command topkbench regenerates every experiment in EXPERIMENTS.md
// (E1–E13), the empirical validation of the paper's claims. The paper
// is a theory paper with no measurement section of its own, so each
// experiment realizes one theorem/lemma as a measured table: I/O counts
// from the simulated external-memory disk against the bound's predicted
// shape, and the headline comparison against the Sheng–Tao baseline.
//
// Usage:
//
//	topkbench             # run every experiment
//	topkbench -exp e2     # one experiment
//	topkbench -quick      # smaller sweeps (CI-sized)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

type experiment struct {
	id    string
	title string
	run   func(quick bool)
}

var experiments = []experiment{
	{"e1", "Theorem 1: query I/Os vs n, k (predicted log_B n + k/B)", e1},
	{"e2", "Theorem 1 vs [14]: amortized update I/Os (the headline result)", e2},
	{"e3", "Lemma 1 (§2 PST): query I/Os vs k, base-2 log term", e3},
	{"e4", "Lemma 2: φ ablation — recall of Q1∪Q2∪Q3 below the proven φ=16", e4},
	{"e5", "Lemma 3: token invariant audit under churn", e5},
	{"e6", "Lemma 5 (AURS): operator calls and approximation vs m", e6},
	{"e7", "Lemma 6 ((f,l)-structure): query/update I/Os vs f·l", e7},
	{"e8", "Lemma 7 (sketch merge): observed rank ratio vs bound", e8},
	{"e9", "Lemma 8 + §4.1: compressed blocks fit in one block (bit-counted)", e9},
	{"e10", "Space: blocks used vs n/B for every structure", e10},
	{"e11", "§1.2 regime map: dispatch and crossover at k = B·lg n", e11},
	{"e12", "Figures 1–2: T̂ concatenation and heap concatenation", e12},
	{"e13", "§1.1 RAM baseline: comparisons scale as lg n + k", e13},
	{"e14", "Ablations: pool size, φ, adaptive selection, sketch base", e14},
	{"e15", "Serving layer (Store v1): TopK vs QueryBatch throughput", e15},
	{"e16", "Shard lifecycle: delete-churn qps and shard count, merges on vs off", e16},
	{"e17", "Snapshot routing: read qps under concurrent writers, snapshot vs rlock", e17},
	{"e18", "Cluster tier: gateway scatter-gather qps vs node count, vs direct-local", e18},
	{"e19", "Write path: single-op insert qps, group commit on vs off, cluster tier", e19},
}

func main() {
	exp := flag.String("exp", "", "experiment id (e1..e19); empty = all")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	jsonFlag := flag.Bool("json", false, "also write BENCH_<exp>.json rows (qps, ns/op, allocs/op) for the serving-layer experiments")
	out := flag.String("out", ".", "directory for BENCH_<exp>.json files")
	flag.Parse()
	jsonOut = *jsonFlag
	quickMode = *quick
	outDir = *out

	any := false
	for _, e := range experiments {
		if *exp != "" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		any = true
		fmt.Printf("==== %s: %s ====\n", strings.ToUpper(e.id), e.title)
		e.run(*quick)
		writeBench(e.id)
		fmt.Println()
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known:", *exp)
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, " %s", e.id)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
