package main

// E18: the cluster tier. An in-process multi-node cluster is booted
// over httptest — each member owns a quantile score band of the same
// point set, serving internal/serve's /v1 surface over a local Sharded
// store, and a topk.Cluster gateway scatter-gathers across them — then
// read throughput is measured through the gateway at 1/2/4/8 nodes and
// compared against the direct-local baseline (the same data in one
// in-process Sharded, no network).
//
// What the table shows: the absolute gateway-vs-local gap is the cost
// of HTTP/JSON per query (loopback here; a real deployment pays real
// network instead but gains real machines), and the trend across node
// counts is the scatter-gather scaling shape — in-process members
// share one CPU budget, so this measures coordination overhead growth,
// not linear capacity growth (that requires actual hardware per node).

import (
	"fmt"
	"math"
	"net/http/httptest"
	"sort"
	"time"

	topk "repro"
	"repro/internal/serve"
	"repro/internal/workload"
	"repro/internal/workload/driver"
)

// bootCluster cuts pts into `nodes` quantile score bands, boots one
// httptest member per band (a Sharded store behind internal/serve,
// declaring its band) and returns a gateway Cluster over the fleet.
func bootCluster(cfg topk.Config, pts []topk.Result, nodes int) (*topk.Cluster, []*httptest.Server, error) {
	byScore := append([]topk.Result(nil), pts...)
	sort.Slice(byScore, func(i, j int) bool { return byScore[i].Score < byScore[j].Score })
	servers := make([]*httptest.Server, 0, nodes)
	addrs := make([]string, 0, nodes)
	for i := 0; i < nodes; i++ {
		start, end := i*len(byScore)/nodes, (i+1)*len(byScore)/nodes
		lo, hi := math.Inf(-1), math.Inf(1)
		if i > 0 {
			lo = byScore[start].Score
		}
		if i < nodes-1 {
			hi = byScore[end].Score
		}
		st, err := topk.LoadSharded(topk.ShardedConfig{Config: cfg, Shards: 8}, byScore[start:end])
		if err != nil {
			return nil, servers, err
		}
		srv := httptest.NewServer(serve.New(st, serve.Options{Lo: lo, Hi: hi}))
		servers = append(servers, srv)
		addrs = append(addrs, srv.URL)
	}
	cl, err := topk.NewCluster(topk.ClusterConfig{Members: addrs, Timeout: 30 * time.Second})
	return cl, servers, err
}

func e18(quick bool) {
	n := 1 << 14
	ops := 6000
	if quick {
		n = 1 << 12
		ops = 1200
	}
	gen := workload.NewGen(81)
	pts := make([]topk.Result, 0, n)
	for _, p := range gen.Uniform(n, 1e6) {
		pts = append(pts, topk.Result{X: p.X, Score: p.Score})
	}
	cfg := topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048}
	queries := gen.Queries(256, 1e6, 0.0005, 0.02, 64)

	fmt.Printf("%16s %6s %14s %18s\n", "mode", "nodes", "TopK qps(g=8)", "QueryBatch/16 qps")
	local, err := topk.LoadSharded(topk.ShardedConfig{Config: cfg, Shards: 8}, pts)
	if err != nil {
		panic(err)
	}
	lt := benchRun("e18", "direct-local TopK", func() workload.Throughput {
		return driver.RunTopK(local, 8, ops, queries)
	})
	lb := benchRun("e18", "direct-local QueryBatch/16", func() workload.Throughput {
		return driver.RunBatched(local, 8, ops, 16, queries)
	})
	fmt.Printf("%16s %6s %14.0f %18.0f\n", "direct-local", "-", lt.QPS(), lb.QPS())

	for _, nodes := range []int{1, 2, 4, 8} {
		cl, servers, err := bootCluster(cfg, pts, nodes)
		if err != nil {
			panic(err)
		}
		if cl.Len() != n {
			panic(fmt.Sprintf("gateway sees n=%d, want %d", cl.Len(), n))
		}
		gt := benchRun("e18", fmt.Sprintf("gateway TopK nodes=%d", nodes), func() workload.Throughput {
			return driver.RunTopK(cl, 8, ops, queries)
		})
		gb := benchRun("e18", fmt.Sprintf("gateway QueryBatch/16 nodes=%d", nodes), func() workload.Throughput {
			return driver.RunBatched(cl, 8, ops, 16, queries)
		})
		fmt.Printf("%16s %6d %14.0f %18.0f\n", "gateway", nodes, gt.QPS(), gb.QPS())
		_ = cl.Close()
		for _, s := range servers {
			s.Close()
		}
	}
	fmt.Println("shape check: gateway qps pays per-request HTTP/JSON cost vs direct-local; batched reads amortize")
	fmt.Println("it 16x per round trip. In-process nodes share one CPU, so rising node counts show coordination")
	fmt.Println("overhead, not hardware scaling; capacity scaling needs one machine per member.")
}
