package main

// E19: the write path. Heavy user write traffic is single-op Inserts,
// and on the cluster tier each one pays a full HTTP round trip to its
// member before the next can go out. The group-commit layer
// (topk.Batched over internal/ingest) coalesces concurrent single-op
// writes into grouped ApplyBatch flushes — one member RPC carries a
// whole group — so the per-op request overhead amortizes across
// however many writers overlapped one commit.
//
// The experiment boots a 3-member httptest cluster (the e18 rig) and
// measures single-op insert throughput at rising writer counts in
// three modes:
//
//   - direct:        every writer calls Cluster.Insert — one HTTP
//     round trip per op, the batcher-off baseline.
//   - batched-sync:  writers call Batched.Insert and park until their
//     group commits. Group size self-clocks with writer overlap, so
//     the speedup grows with concurrency.
//   - batched-async: writers pipeline SubmitInsert with a bounded
//     window of outstanding futures (the 202-accepted serving shape).
//     Groups no longer need a full overlap of parked writers to grow,
//     so this is the deep end of the amortization curve.
//
// Insert scores are spread across the full preload score range so the
// write stream exercises every member band, like real traffic would.
// In-process members share one CPU, so these numbers isolate per-op
// coordination overhead — the quantity group commit attacks — not
// member-side hardware scaling.

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	topk "repro"
	"repro/internal/workload"
)

// runWrites drives total calls of do from g goroutines through a
// shared atomic cursor and reports the measured throughput — the
// write-path twin of workload.RunConcurrent, which deals in queries.
func runWrites(g, total int, do func(j int)) workload.Throughput {
	if g < 1 {
		g = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= total {
					return
				}
				do(j)
			}
		}()
	}
	wg.Wait()
	return workload.Throughput{Goroutines: g, Ops: total, Elapsed: time.Since(start)}
}

func e19(quick bool) {
	// The preload is deliberately small and the per-level write volume
	// modest: member apply cost grows with structure size (sketch
	// decode along the insert path), and once member apply dominates
	// both modes equally, the per-op coordination overhead this
	// experiment isolates disappears into it — structure-size scaling
	// is e15–e18's subject; here the member must stay cheap so the HTTP
	// round trip is the measured quantity.
	n := 1 << 11
	ops := 800
	levels := workload.DefaultLevels // 1..64
	if quick {
		levels = []int{1, 8, 32}
	}
	const nodes = 3
	// LeafCap 512 (vs the read experiments' 2048): every tail insert
	// re-decodes its leaf prefix, so giant leaves make member CPU — not
	// per-op coordination, the thing this experiment measures — the
	// write bottleneck.
	cfg := topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 512}
	gen := workload.NewGen(91)
	pts := make([]topk.Result, 0, n)
	minS, maxS := 1.0, 0.0
	for _, p := range gen.Uniform(n, 1e6) {
		pts = append(pts, topk.Result{X: p.X, Score: p.Score})
		minS = min(minS, p.Score)
		maxS = max(maxS, p.Score)
	}

	// Fresh coordinates per row. Scores spread across the full preload
	// score range so every member band takes its share of the writes
	// (the cluster routes updates by score); positions spread across
	// (1e6, 2e6) — disjoint from the preload's [0, 1e6] so nothing can
	// collide with it, and scattered rather than sequential so inserts
	// land all over the leaf level instead of hammering one tail leaf.
	// Two Weyl sequences (golden ratio for score, √2−1 for position)
	// keep both coordinates spread AND distinct for any number of
	// writes — no modulo cycle to outgrow.
	const (
		golden = 0.61803398874989485
		sqrt2m = 0.41421356237309515
	)
	var stamp atomic.Int64
	coords := func() (x, score float64) {
		j := stamp.Add(1)
		fs := float64(j) * golden
		fs -= math.Floor(fs)
		fx := float64(j) * sqrt2m
		fx -= math.Floor(fx)
		return 1e6 * (1.000001 + fx), minS + (0.001+0.998*fs)*(maxS-minS)
	}

	// warm is the per-mode untimed lead-in: enough writes to establish
	// the HTTP connection pool to every member and seed the write
	// region's leaves before any clock starts.
	warm := ops / 10

	var failed atomic.Int64
	mustNil := func(err error) {
		if err != nil {
			failed.Add(1)
		}
	}

	// pipeWrites is the async-ack client shape: each of g writers
	// pipelines up to credits outstanding submissions (the window an
	// async HTTP client gets from its connection pool), waiting out the
	// oldest future when the window fills and draining its tail before
	// the clock stops — every op's commit lands inside the measure.
	const credits = 256
	pipeWrites := func(bt *topk.Batched, g, total int) workload.Throughput {
		var next atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var futs []topk.Future
				for {
					j := int(next.Add(1)) - 1
					if j >= total {
						break
					}
					x, s := coords()
					futs = append(futs, bt.SubmitInsert(x, s))
					if len(futs) >= credits {
						mustNil(futs[0].Wait())
						futs = futs[:copy(futs, futs[1:])]
					}
				}
				for _, f := range futs {
					mustNil(f.Wait())
				}
			}()
		}
		wg.Wait()
		return workload.Throughput{Goroutines: g, Ops: total, Elapsed: time.Since(start)}
	}

	// The fleet shares cores with the writers and with whatever else the
	// host is doing, so single-shot rows are noisy — and worse, each
	// mode would sample a different noise window, making the ratios
	// noisy too. Per level, every mode gets its own fresh fleet (no
	// mode inherits another's points or warmed batcher), and the
	// measured attempts interleave across modes so all three sample the
	// same noise windows; each mode keeps its best attempt. allocs/op
	// is the Mallocs delta of the kept attempt.
	const attempts = 3
	type modeRun struct {
		name    string
		run     func(total int) workload.Throughput
		cleanup func()
	}
	fmt.Printf("%4s %12s %14s %15s %11s %12s\n", "g", "direct qps", "batched-sync", "batched-async", "sync gain", "async gain")
	for _, g := range levels {
		mk := func(name string, setup func(cl *topk.Cluster) (func(total int) workload.Throughput, func())) *modeRun {
			cl, servers, err := bootCluster(cfg, pts, nodes)
			if err != nil {
				panic(err)
			}
			run, closeFn := setup(cl)
			return &modeRun{name: name, run: run, cleanup: func() {
				if closeFn != nil {
					closeFn()
				}
				_ = cl.Close()
				for _, s := range servers {
					s.Close()
				}
			}}
		}
		const nmodes = 3
		var best [nmodes]workload.Throughput
		var allocs [nmodes]float64
		names := [nmodes]string{"direct", "batched-sync", "batched-async"}
		modes := []*modeRun{
			mk("direct", func(cl *topk.Cluster) (func(int) workload.Throughput, func()) {
				return func(total int) workload.Throughput {
					return runWrites(g, total, func(int) {
						x, s := coords()
						mustNil(cl.Insert(x, s))
					})
				}, nil
			}),
			mk("batched-sync", func(cl *topk.Cluster) (func(int) workload.Throughput, func()) {
				bt, err := topk.NewBatched(cl, topk.BatchedConfig{Window: time.Millisecond, MaxBatch: 256, Stripes: 32})
				if err != nil {
					panic(err)
				}
				return func(total int) workload.Throughput {
					return runWrites(g, total, func(int) {
						x, s := coords()
						mustNil(bt.Insert(x, s))
					})
				}, func() { _ = bt.Close() }
			}),
			mk("batched-async", func(cl *topk.Cluster) (func(int) workload.Throughput, func()) {
				// Async mode runs a deeper group (1024 vs the sync
				// rows' 256): pipelined submitters keep that many ops
				// pending without any extra writer parked, and the
				// bigger group amortizes the member round trip further.
				bt, err := topk.NewBatched(cl, topk.BatchedConfig{Window: time.Millisecond, MaxBatch: 1024, Stripes: 32})
				if err != nil {
					panic(err)
				}
				return func(total int) workload.Throughput {
					return pipeWrites(bt, g, total)
				}, func() { _ = bt.Close() }
			}),
		}
		for _, m := range modes {
			m.run(warm)
		}
		for i := 0; i < attempts; i++ {
			for k, m := range modes {
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				r := m.run(ops)
				runtime.ReadMemStats(&m1)
				if best[k].Elapsed == 0 || r.QPS() > best[k].QPS() {
					best[k] = r
					allocs[k] = float64(m1.Mallocs-m0.Mallocs) / float64(ops)
				}
			}
		}
		for _, m := range modes {
			m.cleanup()
		}
		for k, name := range names {
			benchRecord("e19", fmt.Sprintf("%s g=%d", name, g), best[k], allocs[k])
		}
		direct, syncRow, asyncRow := best[0], best[1], best[2]
		fmt.Printf("%4d %12.0f %14.0f %15.0f %10.1fx %11.1fx\n",
			g, direct.QPS(), syncRow.QPS(), asyncRow.QPS(),
			syncRow.QPS()/direct.QPS(), asyncRow.QPS()/direct.QPS())
	}
	if f := failed.Load(); f > 0 {
		panic(fmt.Sprintf("e19: %d writes rejected (coordinate scheme must make every insert valid)", f))
	}
	fmt.Println("shape check: direct pays one HTTP round trip per insert; group commit amortizes it across the")
	fmt.Println("group, so the gain tracks writer overlap — sync gains need parked writers, async pipelining")
	fmt.Println("forms large groups even at low writer counts. Acceptance floor: batcher-on ≥ 5x direct at g≥32.")
}
