package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	topk "repro"
	"repro/internal/serve"
)

// errBody is the structured v1 error envelope.
type errBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func newTestStore(t *testing.T, backend string) topk.Store {
	t.Helper()
	st, err := newStore(backend, topk.ShardedConfig{
		Config: topk.Config{ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048},
		Shards: 4,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newServer(newTestStore(t, "sharded")))
	t.Cleanup(srv.Close)
	return srv
}

func decode(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func decodeErr(t *testing.T, resp *http.Response, wantStatus int) errBody {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
	}
	var eb errBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code == "" || eb.Error.Message == "" {
		t.Fatalf("error body missing code/message: %+v", eb)
	}
	return eb
}

// TestEndpoints drives the /v1 surface end to end, on both route
// prefixes — the unversioned paths must behave as thin aliases.
func TestEndpoints(t *testing.T) {
	for _, prefix := range []string{"/v1", ""} {
		t.Run("prefix="+prefix, func(t *testing.T) {
			srv := testServer(t)

			for i := 0; i < 20; i++ {
				body := fmt.Sprintf(`{"x":%d,"score":%d.5}`, i*10, i)
				resp, err := http.Post(srv.URL+prefix+"/insert", "application/json", strings.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				var out struct {
					OK bool `json:"ok"`
					N  int  `json:"n"`
				}
				decode(t, resp, &out)
				if !out.OK || out.N != i+1 {
					t.Fatalf("insert %d: %+v", i, out)
				}
			}

			resp, err := http.Get(srv.URL + prefix + "/topk?x1=0&x2=95&k=3")
			if err != nil {
				t.Fatal(err)
			}
			var tk struct {
				Results []struct {
					X     float64 `json:"x"`
					Score float64 `json:"score"`
				} `json:"results"`
			}
			decode(t, resp, &tk)
			if len(tk.Results) != 3 || tk.Results[0].X != 90 || tk.Results[0].Score != 9.5 {
				t.Fatalf("topk: %+v", tk)
			}

			resp, err = http.Get(srv.URL + prefix + "/count?x1=0&x2=95")
			if err != nil {
				t.Fatal(err)
			}
			var cnt struct {
				Count int `json:"count"`
			}
			decode(t, resp, &cnt)
			if cnt.Count != 10 {
				t.Fatalf("count = %d, want 10", cnt.Count)
			}

			resp, err = http.Post(srv.URL+prefix+"/delete", "application/json", strings.NewReader(`{"x":90,"score":9.5}`))
			if err != nil {
				t.Fatal(err)
			}
			var del struct {
				Found bool `json:"found"`
				N     int  `json:"n"`
			}
			decode(t, resp, &del)
			if !del.Found || del.N != 19 {
				t.Fatalf("delete: %+v", del)
			}
			resp, err = http.Post(srv.URL+prefix+"/delete", "application/json", strings.NewReader(`{"x":90,"score":9.5}`))
			if err != nil {
				t.Fatal(err)
			}
			decode(t, resp, &del)
			if del.Found {
				t.Fatal("second delete reported found")
			}

			resp, err = http.Get(srv.URL + prefix + "/stats")
			if err != nil {
				t.Fatal(err)
			}
			var st struct {
				N      int   `json:"n"`
				Shards int   `json:"shards"`
				Writes int64 `json:"writes"`
			}
			decode(t, resp, &st)
			if st.N != 19 || st.Shards < 1 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

// TestBatchRoundTrip: POST /v1/batch applies a mixed
// insert/delete/query batch and reports per-op outcomes in request
// order; updates run before queries, so the query half observes them.
func TestBatchRoundTrip(t *testing.T) {
	srv := testServer(t)

	// Seed two points.
	for _, body := range []string{`{"x":10,"score":1.5}`, `{"x":20,"score":2.5}`} {
		resp, err := http.Post(srv.URL+"/v1/insert", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	batch := `{"ops":[
		{"op":"insert","x":30,"score":3.5},
		{"op":"delete","x":10,"score":1.5},
		{"op":"query","x1":0,"x2":100,"k":10},
		{"op":"insert","x":20,"score":9.9},
		{"op":"delete","x":77,"score":7.7},
		{"op":"insert","x":40,"score":2.5}
	]}`
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Results []struct {
			OK    bool `json:"ok"`
			Error *struct {
				Code string `json:"code"`
			} `json:"error"`
			Results []struct {
				X     float64 `json:"x"`
				Score float64 `json:"score"`
			} `json:"results"`
		} `json:"results"`
		N int `json:"n"`
	}
	decode(t, resp, &out)
	if len(out.Results) != 6 {
		t.Fatalf("got %d results", len(out.Results))
	}
	if !out.Results[0].OK || !out.Results[1].OK {
		t.Fatalf("insert/delete ops failed: %+v", out.Results[:2])
	}
	// The query ran after the updates: 10 is gone, 30 is present.
	q := out.Results[2]
	if !q.OK || len(q.Results) != 2 {
		t.Fatalf("query item: %+v", q)
	}
	if q.Results[0].X != 30 || q.Results[0].Score != 3.5 || q.Results[1].X != 20 {
		t.Fatalf("query results: %+v", q.Results)
	}
	// Duplicate position (20) and duplicate score (2.5) are per-op
	// rejections, not whole-batch failures.
	if out.Results[3].OK || out.Results[3].Error.Code != "duplicate_position" {
		t.Fatalf("duplicate position op: %+v", out.Results[3])
	}
	if out.Results[4].OK || out.Results[4].Error.Code != "not_found" {
		t.Fatalf("absent delete op: %+v", out.Results[4])
	}
	if out.Results[5].OK || out.Results[5].Error.Code != "duplicate_score" {
		t.Fatalf("duplicate score op: %+v", out.Results[5])
	}
	if out.N != 2 {
		t.Fatalf("n = %d, want 2", out.N)
	}

	// A batch on a near-empty store whose query k exceeds the
	// PRE-batch live size: the clamp must account for the batch's own
	// inserts, so both fresh points come back.
	srv2 := testServer(t)
	resp, err = http.Post(srv2.URL+"/v1/batch", "application/json", strings.NewReader(
		`{"ops":[{"op":"insert","x":1,"score":1},{"op":"insert","x":2,"score":2},{"op":"query","x1":0,"x2":10,"k":5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out2 struct {
		Results []struct {
			OK      bool  `json:"ok"`
			Results []any `json:"results"`
		} `json:"results"`
	}
	decode(t, resp, &out2)
	if got := len(out2.Results[2].Results); got != 2 {
		t.Fatalf("query after same-batch inserts returned %d results, want 2", got)
	}

	// An unknown op tag fails the whole batch as a 400 before anything
	// is applied.
	resp, err = http.Post(srv.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"ops":[{"op":"upsert","x":1,"score":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if eb := decodeErr(t, resp, http.StatusBadRequest); eb.Error.Code != "bad_request" {
		t.Fatalf("unknown op code: %+v", eb)
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		method, path, body string
	}{
		{"POST", "/v1/insert", "not json"},
		{"POST", "/v1/delete", "{"},
		{"POST", "/v1/batch", "]["},
		{"GET", "/v1/topk?x1=a&x2=1&k=1", ""},
		{"GET", "/v1/topk?x1=0&x2=1", ""},
		{"GET", "/v1/count?x1=0", ""},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if eb := decodeErr(t, resp, http.StatusBadRequest); eb.Error.Code != "bad_request" {
			t.Fatalf("%s %s: code %q, want bad_request", c.method, c.path, eb.Error.Code)
		}
	}
	// An absurd k must be served (clamped to the live size), not
	// size a multi-gigabyte allocation.
	resp2, err := http.Get(srv.URL + "/v1/topk?x1=-1e18&x2=1e18&k=2000000000")
	if err != nil {
		t.Fatal(err)
	}
	var tk struct {
		Results []any `json:"results"`
	}
	decode(t, resp2, &tk)
	if len(tk.Results) != 0 {
		t.Fatalf("huge k on empty index returned %d results", len(tk.Results))
	}
	// Wrong method on a registered pattern.
	resp, err := http.Get(srv.URL + "/v1/insert")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/insert: status %d, want 405", resp.StatusCode)
	}
}

// TestDuplicateInsert: duplicate positions and duplicate scores are
// 409s with distinct machine-readable codes, and the server keeps
// serving afterwards.
func TestDuplicateInsert(t *testing.T) {
	srv := testServer(t)
	body := `{"x":42.5,"score":7.25}`
	resp, err := http.Post(srv.URL+"/v1/insert", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(srv.URL+"/v1/insert", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if eb := decodeErr(t, resp, http.StatusConflict); eb.Error.Code != "duplicate_position" {
		t.Fatalf("duplicate insert code: %+v", eb)
	}
	// Same position, different score is still a duplicate position.
	resp, err = http.Post(srv.URL+"/v1/insert", "application/json", strings.NewReader(`{"x":42.5,"score":9.9}`))
	if err != nil {
		t.Fatal(err)
	}
	if eb := decodeErr(t, resp, http.StatusConflict); eb.Error.Code != "duplicate_position" {
		t.Fatalf("same-position insert code: %+v", eb)
	}
	// Fresh position, occupied score: duplicate_score.
	resp, err = http.Post(srv.URL+"/v1/insert", "application/json", strings.NewReader(`{"x":99,"score":7.25}`))
	if err != nil {
		t.Fatal(err)
	}
	if eb := decodeErr(t, resp, http.StatusConflict); eb.Error.Code != "duplicate_score" {
		t.Fatalf("duplicate-score insert code: %+v", eb)
	}
	// The index still serves.
	resp, err = http.Get(srv.URL + "/v1/topk?x1=0&x2=100&k=1")
	if err != nil {
		t.Fatal(err)
	}
	var tk struct {
		Results []struct {
			X float64 `json:"x"`
		} `json:"results"`
	}
	decode(t, resp, &tk)
	if len(tk.Results) != 1 || tk.Results[0].X != 42.5 {
		t.Fatalf("post-conflict topk: %+v", tk)
	}
}

// TestSingleBackend: the handlers are written against topk.Store, so
// the sequential backend behind a mutex serves the same API (minus
// the shards gauge in /v1/stats).
func TestSingleBackend(t *testing.T) {
	srv := httptest.NewServer(newServer(newTestStore(t, "single")))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/insert", "application/json", strings.NewReader(`{"x":1,"score":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/v1/topk?x1=0&x2=10&k=5")
	if err != nil {
		t.Fatal(err)
	}
	var tk struct {
		Results []struct {
			X float64 `json:"x"`
		} `json:"results"`
	}
	decode(t, resp, &tk)
	if len(tk.Results) != 1 || tk.Results[0].X != 1 {
		t.Fatalf("topk on single backend: %+v", tk)
	}
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	decode(t, resp, &st)
	if _, ok := st["shards"]; ok {
		t.Fatalf("single backend reported shards: %v", st)
	}
	if _, err := newStore("bogus", topk.ShardedConfig{}, nil); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestRecoverMiddleware: a panicking handler yields a structured JSON
// 500, not a severed connection.
func TestRecoverMiddleware(t *testing.T) {
	srv := httptest.NewServer(serve.WithRecover(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	eb := decodeErr(t, resp, http.StatusInternalServerError)
	if eb.Error.Code != "internal" || !strings.Contains(eb.Error.Message, "boom") {
		t.Fatalf("error body: %+v", eb)
	}
}

// TestConcurrentClients hammers the server from parallel goroutines,
// mimicking real serving traffic end to end through HTTP — mixing
// point inserts, reads and batch calls.
func TestConcurrentClients(t *testing.T) {
	srv := testServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var resp *http.Response
				var err error
				if i%2 == 0 {
					body := fmt.Sprintf(`{"x":%d.25,"score":%d.75}`, w*1000+i, w*1000+i)
					resp, err = http.Post(srv.URL+"/v1/insert", "application/json", strings.NewReader(body))
				} else {
					body := fmt.Sprintf(`{"ops":[{"op":"insert","x":%d.25,"score":%d.75},{"op":"query","x1":0,"x2":10000,"k":5}]}`,
						w*1000+i, w*1000+i)
					resp, err = http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(body))
				}
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				resp, err = http.Get(srv.URL + "/v1/topk?x1=0&x2=10000&k=5")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		N int `json:"n"`
	}
	decode(t, resp, &st)
	if st.N != 8*25 {
		t.Fatalf("n = %d, want %d", st.N, 8*25)
	}
}

// TestGracefulShutdown: cancelling serve's context (what SIGINT/
// SIGTERM do in main) must let an in-flight request finish and write
// its response, then return nil so topkd exits 0 — not kill the
// connection mid-write.
func TestGracefulShutdown(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"ok":true}`)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- serveLoop(ctx, &http.Server{Handler: h}, ln, 5*time.Second, nil, nil) }()

	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %d", resp.StatusCode)
			} else if _, rerr := io.ReadAll(resp.Body); rerr != nil {
				err = rerr
			}
		}
		reqDone <- err
	}()

	<-entered // the request is in flight
	cancel()  // "SIGTERM"
	select {
	case err := <-served:
		t.Fatalf("serve returned before draining: %v", err)
	case <-time.After(50 * time.Millisecond):
		// still draining, as it should be
	}
	close(release)
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after the in-flight request finished")
	}
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request was not drained cleanly: %v", err)
	}
	// New connections must be refused after shutdown.
	if _, err := http.Get("http://" + ln.Addr().String() + "/"); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}
}

// TestTopKPagination: ?offset pages through a large answer — each
// page is the corresponding slice of the full descending-score
// answer, the tail page is truncated, an offset past the end is
// empty, and a malformed or negative offset is a structured 400.
func TestTopKPagination(t *testing.T) {
	srv := testServer(t)
	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"x":%d,"score":%d.5}`, i*10, i)
		resp, err := http.Post(srv.URL+"/v1/insert", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	type tk struct {
		Results []struct {
			X     float64 `json:"x"`
			Score float64 `json:"score"`
		} `json:"results"`
		Offset int `json:"offset"`
	}
	get := func(query string) tk {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/topk?" + query)
		if err != nil {
			t.Fatal(err)
		}
		var out tk
		decode(t, resp, &out)
		return out
	}
	full := get("x1=0&x2=200&k=20")
	if len(full.Results) != 20 || full.Offset != 0 {
		t.Fatalf("full answer: %+v", full)
	}
	// Page 2 of size 5 is exactly full[5:10].
	page := get("x1=0&x2=200&k=5&offset=5")
	if len(page.Results) != 5 || page.Offset != 5 {
		t.Fatalf("page: %+v", page)
	}
	for i, r := range page.Results {
		if r != full.Results[5+i] {
			t.Fatalf("page[%d] = %+v, want %+v", i, r, full.Results[5+i])
		}
	}
	// Tail page truncates; offset past the end is empty, not an error.
	if tail := get("x1=0&x2=200&k=10&offset=15"); len(tail.Results) != 5 {
		t.Fatalf("tail page: %+v", tail)
	}
	if past := get("x1=0&x2=200&k=5&offset=100"); len(past.Results) != 0 {
		t.Fatalf("past-the-end page: %+v", past)
	}
	// Huge offset+k must not size an allocation (both clamp to n).
	if huge := get("x1=0&x2=200&k=2000000000&offset=2000000000"); len(huge.Results) != 0 {
		t.Fatalf("huge page: %+v", huge)
	}
	// Pages empty by construction (k=0, or offset at/past the live
	// size) are served without fetching anything — clampPage returns 0.
	if z := get("x1=0&x2=200&k=0&offset=1000000"); len(z.Results) != 0 {
		t.Fatalf("k=0 page: %+v", z)
	}
	if st := newTestStore(t, "sharded"); serve.ClampPage(st, 5, 0) != 0 || serve.ClampPage(st, 0, -3) != 0 || serve.ClampPage(st, 0, 5) != 0 {
		t.Fatal("ClampPage must be 0 for empty-by-construction pages")
	}
	for _, q := range []string{"x1=0&x2=200&k=5&offset=-1", "x1=0&x2=200&k=5&offset=x"} {
		resp, err := http.Get(srv.URL + "/v1/topk?" + q)
		if err != nil {
			t.Fatal(err)
		}
		if eb := decodeErr(t, resp, http.StatusBadRequest); eb.Error.Code != "bad_request" {
			t.Fatalf("offset %q: %+v", q, eb)
		}
	}
}

// TestMetricsEndpoint: /v1/metrics serves Prometheus text format —
// fleet gauges and counters on both backends, shard lifecycle and
// topology epoch only where a router exists.
func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/insert", "application/json", strings.NewReader(`{"x":1,"score":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	fetch := func(url string) string {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	body := fetch(srv.URL + "/v1/metrics")
	for _, want := range []string{
		"topkd_points_live 1",
		"# TYPE topkd_io_reads_total counter",
		"topkd_io_writes_total ",
		"topkd_blocks_live ",
		"topkd_blocks_peak ",
		"topkd_shards 1",
		"topkd_shard_splits_total 0",
		"topkd_shard_merges_total 0",
		"# TYPE topkd_topology_epoch gauge",
		"topkd_topology_epoch ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	// The unversioned alias serves the same handler.
	if alias := fetch(srv.URL + "/metrics"); !strings.Contains(alias, "topkd_points_live") {
		t.Fatalf("alias metrics: %s", alias)
	}

	// The single backend has no shard topology: fleet metrics only.
	single := httptest.NewServer(newServer(newTestStore(t, "single")))
	defer single.Close()
	sbody := fetch(single.URL + "/v1/metrics")
	if !strings.Contains(sbody, "topkd_points_live") {
		t.Fatalf("single-backend metrics: %s", sbody)
	}
	for _, absent := range []string{"topkd_shards", "topkd_shard_splits_total", "topkd_topology_epoch"} {
		if strings.Contains(sbody, absent) {
			t.Fatalf("single backend reported %q:\n%s", absent, sbody)
		}
	}
}

// TestMaintenanceFlagWiring: a sharded store built the way main does
// with -maintenance set runs the background loop (observable via the
// optional Close interface), and Close is what the shutdown path
// calls after draining.
func TestMaintenanceFlagWiring(t *testing.T) {
	st, err := newStore("sharded", topk.ShardedConfig{
		Config:              topk.Config{ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048},
		Shards:              4,
		MaintenanceInterval: time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := st.(interface{ Close() error })
	if !ok {
		t.Fatal("sharded store does not expose Close")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The single backend has no loop; the shutdown path must cope.
	if _, ok := newTestStore(t, "single").(interface{ Close() error }); ok {
		t.Fatal("single backend unexpectedly exposes Close")
	}
}

// TestStatsLifecycleCounters: the sharded backend reports shard
// split/merge counters under /v1/stats; the single backend, which has
// no lifecycle, omits them.
func TestStatsLifecycleCounters(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	decode(t, resp, &st)
	for _, key := range []string{"shards", "splits", "merges"} {
		if _, ok := st[key]; !ok {
			t.Fatalf("stats missing %q: %v", key, st)
		}
	}

	single := httptest.NewServer(newServer(newTestStore(t, "single")))
	defer single.Close()
	resp, err = http.Get(single.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sst map[string]any
	decode(t, resp, &sst)
	for _, key := range []string{"shards", "splits", "merges"} {
		if _, ok := sst[key]; ok {
			t.Fatalf("single backend reported %q: %v", key, sst)
		}
	}
}

// TestParseRange covers the -range member flag: open ends, explicit
// bands, and rejected forms.
func TestParseRange(t *testing.T) {
	if lo, hi, err := parseRange(":5"); err != nil || !math.IsInf(lo, -1) || hi != 5 {
		t.Fatalf("parseRange(:5) = %v %v %v", lo, hi, err)
	}
	if lo, hi, err := parseRange("5:"); err != nil || lo != 5 || !math.IsInf(hi, 1) {
		t.Fatalf("parseRange(5:) = %v %v %v", lo, hi, err)
	}
	if lo, hi, err := parseRange("-2.5:7"); err != nil || lo != -2.5 || hi != 7 {
		t.Fatalf("parseRange(-2.5:7) = %v %v %v", lo, hi, err)
	}
	if lo, hi, err := parseRange(":"); err != nil || !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Fatalf("parseRange(:) = %v %v %v", lo, hi, err)
	}
	for _, bad := range []string{"", "5", "7:5", "5:5", "x:1", "1:y"} {
		if _, _, err := parseRange(bad); err == nil {
			t.Fatalf("parseRange(%q) accepted", bad)
		}
	}
}

// TestGatewayEndToEnd boots the full three-tier stack in-process: two
// banded member topkd handler trees over httptest, a topk.Cluster
// dialing them, and a GATEWAY topkd handler tree over the Cluster —
// then drives the gateway exactly like a client would and checks the
// answers, the aggregated stats, and the cluster metrics.
func TestGatewayEndToEnd(t *testing.T) {
	mkMember := func(lo, hi float64) *httptest.Server {
		st, err := topk.NewSharded(topk.ShardedConfig{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		return httptest.NewServer(serve.New(st, serve.Options{Lo: lo, Hi: hi}))
	}
	a := mkMember(math.Inf(-1), 5)
	b := mkMember(5, math.Inf(1))
	defer a.Close()
	defer b.Close()
	cl, err := topk.NewCluster(topk.ClusterConfig{
		Members: []string{a.URL, b.URL},
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	gw := httptest.NewServer(newServer(cl))
	defer gw.Close()

	// Writes through the gateway land on the right members.
	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"x":%d,"score":%g}`, i, float64(i)/2)
		resp, err := http.Post(gw.URL+"/v1/insert", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("insert %d: status %d", i, resp.StatusCode)
		}
	}
	// Read back through the gateway: global top-3 spans the band cut.
	resp, err := http.Get(gw.URL + "/v1/topk?x1=0&x2=100&k=3")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Results []struct {
			X     float64 `json:"x"`
			Score float64 `json:"score"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Results) != 3 || out.Results[0].Score != 9.5 || out.Results[1].Score != 9 || out.Results[2].Score != 8.5 {
		t.Fatalf("gateway topk = %+v", out.Results)
	}
	// A duplicate through the gateway is a 409, same as local backends.
	resp, err = http.Post(gw.URL+"/v1/insert", "application/json", strings.NewReader(`{"x":999,"score":4.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate via gateway: status %d, want 409", resp.StatusCode)
	}
	// Aggregated stats expose the fleet view.
	resp, err = http.Get(gw.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["n"].(float64) != 20 || stats["nodes"].(float64) != 2 || stats["ejected"].(float64) != 0 {
		t.Fatalf("gateway stats = %v", stats)
	}
	// Prometheus metrics carry the cluster gauges.
	resp, err = http.Get(gw.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "topkd_cluster_nodes 2") {
		t.Fatalf("metrics missing cluster gauges:\n%s", text)
	}
}

// TestShutdownFlushesAcceptedWrites pins the drain contract of the
// group-commit write path: writes acknowledged with 202 before
// "SIGTERM" must be committed by the post-drain store Close — exactly
// main's shutdown sequence — even when the batching window and size
// trigger are far too large to have fired on their own. No
// accepted-then-dropped writes.
func TestShutdownFlushesAcceptedWrites(t *testing.T) {
	inner := newTestStore(t, "sharded")
	bt, err := topk.NewBatched(inner, topk.BatchedConfig{
		Window:   time.Hour, // only shutdown may flush
		MaxBatch: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := serve.New(bt, serve.Options{AsyncAck: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- serveLoop(ctx, &http.Server{Handler: h}, ln, 5*time.Second, nil, nil) }()

	// Part-fill the stripes: a handful of accepted writes, nowhere near
	// either flush trigger.
	const writes = 7
	base := "http://" + ln.Addr().String()
	for i := 0; i < writes; i++ {
		body := fmt.Sprintf(`{"x": %d, "score": %d}`, 100+i, 200+i)
		resp, err := http.Post(base+"/v1/insert", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("write %d: status %d, want 202", i, resp.StatusCode)
		}
	}
	if got := inner.Len(); got != 0 {
		t.Fatalf("inner store has %d points before shutdown; the flush triggers fired early", got)
	}

	cancel() // "SIGTERM"
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveLoop did not drain")
	}
	// main closes the store after the drain; Batched.Close flushes the
	// part-filled stripes into the inner store first.
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	if got := inner.Len(); got != writes {
		t.Fatalf("after shutdown flush: inner store has %d points, want %d (accepted writes dropped)", got, writes)
	}
}

// TestValidateTraceSample: -trace-sample accepts exactly [0, 1] and
// rejects NaN and out-of-range values at startup instead of silently
// tracing nothing (or everything).
func TestValidateTraceSample(t *testing.T) {
	for _, v := range []float64{0, 0.5, 1} {
		if err := validateTraceSample(v); err != nil {
			t.Errorf("validateTraceSample(%v) = %v, want nil", v, err)
		}
	}
	for _, v := range []float64{math.NaN(), -0.1, 1.1, -1, 2, math.Inf(1), math.Inf(-1)} {
		if err := validateTraceSample(v); err == nil {
			t.Errorf("validateTraceSample(%v) = nil, want rejection", v)
		}
	}
}
