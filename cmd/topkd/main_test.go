package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	topk "repro"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	idx := topk.NewSharded(topk.ShardedConfig{
		Config: topk.Config{ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048},
		Shards: 4,
	})
	srv := httptest.NewServer(newServer(idx))
	t.Cleanup(srv.Close)
	return srv
}

func decode(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestEndpoints(t *testing.T) {
	srv := testServer(t)

	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"x":%d,"score":%d.5}`, i*10, i)
		resp, err := http.Post(srv.URL+"/insert", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			OK bool `json:"ok"`
			N  int  `json:"n"`
		}
		decode(t, resp, &out)
		if !out.OK || out.N != i+1 {
			t.Fatalf("insert %d: %+v", i, out)
		}
	}

	resp, err := http.Get(srv.URL + "/topk?x1=0&x2=95&k=3")
	if err != nil {
		t.Fatal(err)
	}
	var tk struct {
		Results []struct {
			X     float64 `json:"x"`
			Score float64 `json:"score"`
		} `json:"results"`
	}
	decode(t, resp, &tk)
	if len(tk.Results) != 3 || tk.Results[0].X != 90 || tk.Results[0].Score != 9.5 {
		t.Fatalf("topk: %+v", tk)
	}

	resp, err = http.Get(srv.URL + "/count?x1=0&x2=95")
	if err != nil {
		t.Fatal(err)
	}
	var cnt struct {
		Count int `json:"count"`
	}
	decode(t, resp, &cnt)
	if cnt.Count != 10 {
		t.Fatalf("count = %d, want 10", cnt.Count)
	}

	resp, err = http.Post(srv.URL+"/delete", "application/json", strings.NewReader(`{"x":90,"score":9.5}`))
	if err != nil {
		t.Fatal(err)
	}
	var del struct {
		Found bool `json:"found"`
		N     int  `json:"n"`
	}
	decode(t, resp, &del)
	if !del.Found || del.N != 19 {
		t.Fatalf("delete: %+v", del)
	}
	resp, err = http.Post(srv.URL+"/delete", "application/json", strings.NewReader(`{"x":90,"score":9.5}`))
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, &del)
	if del.Found {
		t.Fatal("second delete reported found")
	}

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		N      int   `json:"n"`
		Shards int   `json:"shards"`
		Writes int64 `json:"writes"`
	}
	decode(t, resp, &st)
	if st.N != 19 || st.Shards < 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		method, path, body string
	}{
		{"POST", "/insert", "not json"},
		{"POST", "/delete", "{"},
		{"GET", "/topk?x1=a&x2=1&k=1", ""},
		{"GET", "/topk?x1=0&x2=1", ""},
		{"GET", "/count?x1=0", ""},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %s: status %d, want 400", c.method, c.path, resp.StatusCode)
		}
	}
	// An absurd k must be served (clamped to the live size), not
	// size a multi-gigabyte allocation.
	resp2, err := http.Get(srv.URL + "/topk?x1=-1e18&x2=1e18&k=2000000000")
	if err != nil {
		t.Fatal(err)
	}
	var tk struct {
		Results []any `json:"results"`
	}
	decode(t, resp2, &tk)
	if len(tk.Results) != 0 {
		t.Fatalf("huge k on empty index returned %d results", len(tk.Results))
	}
	// Wrong method on a registered pattern.
	resp, err := http.Get(srv.URL + "/insert")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /insert: status %d, want 405", resp.StatusCode)
	}
}

// TestDuplicateInsert: re-inserting an occupied position violates the
// index's set contract; the server must refuse with 409 (or degrade
// to a 500 in the racy residual case) and keep serving afterwards.
func TestDuplicateInsert(t *testing.T) {
	srv := testServer(t)
	body := `{"x":42.5,"score":7.25}`
	resp, err := http.Post(srv.URL+"/insert", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(srv.URL+"/insert", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate insert: status %d, want 409", resp.StatusCode)
	}
	// Same position, different score is still a duplicate position.
	resp, err = http.Post(srv.URL+"/insert", "application/json", strings.NewReader(`{"x":42.5,"score":9.9}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("same-position insert: status %d, want 409", resp.StatusCode)
	}
	// The index still serves.
	resp, err = http.Get(srv.URL + "/topk?x1=0&x2=100&k=1")
	if err != nil {
		t.Fatal(err)
	}
	var tk struct {
		Results []struct {
			X float64 `json:"x"`
		} `json:"results"`
	}
	decode(t, resp, &tk)
	if len(tk.Results) != 1 || tk.Results[0].X != 42.5 {
		t.Fatalf("post-conflict topk: %+v", tk)
	}
}

// TestRecoverMiddleware: a panicking handler yields a JSON 500, not a
// severed connection.
func TestRecoverMiddleware(t *testing.T) {
	srv := httptest.NewServer(withRecover(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	var out struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Error, "boom") {
		t.Fatalf("error body: %+v", out)
	}
}

// TestConcurrentClients hammers the server from parallel goroutines,
// mimicking real serving traffic end to end through HTTP.
func TestConcurrentClients(t *testing.T) {
	srv := testServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				body := fmt.Sprintf(`{"x":%d.25,"score":%d.75}`, w*1000+i, w*1000+i)
				resp, err := http.Post(srv.URL+"/insert", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				resp, err = http.Get(srv.URL + "/topk?x1=0&x2=10000&k=5")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		N int `json:"n"`
	}
	decode(t, resp, &st)
	if st.N != 8*25 {
		t.Fatalf("n = %d, want %d", st.N, 8*25)
	}
}
