// Command topkd serves a topk.Store over HTTP/JSON — the network face
// of the serving stack. Handlers (internal/serve) are written purely
// against the topk.Store interface, so the backend is a startup flag:
//
//   - the default concurrent Sharded router (net/http's per-connection
//     goroutines become router concurrency, no extra locking),
//   - a single sequential Index guarded by one mutex for comparison
//     runs (-backend single),
//   - or a CLUSTER GATEWAY (-gateway nodeA,nodeB,...): the same /v1
//     surface backed by a topk.Cluster that score-routes writes to
//     remote member topkd processes and scatter-gathers reads across
//     them. Members declare their score band with -range lo:hi and the
//     gateway discovers the fleet layout from each member's /v1/range.
//
// The API is versioned under /v1; the unversioned paths from the
// first release are kept as thin aliases of the same handlers.
//
//	$ topkd -addr :8080 -shards 8 -n 100000 -maintenance 30s
//	$ curl -s 'localhost:8080/v1/topk?x1=100&x2=200&k=3'
//	$ curl -s 'localhost:8080/v1/topk?x1=100&x2=200&k=3&offset=3'   # page 2
//	$ curl -s localhost:8080/v1/metrics                             # Prometheus text format
//	$ curl -s localhost:8080/v1/epoch                               # topology change feed
//	$ curl -s -X POST localhost:8080/v1/insert -d '{"x":150.5,"score":9.9}'
//	$ curl -s -X POST localhost:8080/v1/batch -d '{"ops":[
//	      {"op":"insert","x":1.5,"score":7.25},
//	      {"op":"query","x1":0,"x2":100,"k":5,"offset":5}]}'
//
// Cluster quickstart (two members + gateway; see README for more):
//
//	$ topkd -addr :8081 -range :5        # member owning scores (-Inf, 5)
//	$ topkd -addr :8082 -range 5:        # member owning scores [5, +Inf)
//	$ topkd -addr :8080 -gateway localhost:8081,localhost:8082
//
// On SIGINT/SIGTERM the server drains in-flight requests (bounded by
// -drain), stops background loops (maintenance or cluster health
// checking) and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	topk "repro"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backend := flag.String("backend", "sharded", "index backend: sharded | single")
	gateway := flag.String("gateway", "", "comma-separated member addresses; serve as a cluster gateway instead of a local store")
	rangeFlag := flag.String("range", "", "score band this member owns, as lo:hi with open ends empty (e.g. :5, 5:10, 10:)")
	shards := flag.Int("shards", 8, "maximum shard count (sharded backend)")
	b := flag.Int("B", 64, "block size in words per shard disk")
	m := flag.Int("M", 0, "buffer-pool words (fleet total when sharded; 0 = default)")
	minMerge := flag.Int("min-merge", 0, "shard size floor of the delete-triggered merge policy (0 = adaptive, starting at min-split/2; negative disables merging)")
	maintenance := flag.Duration("maintenance", 0, "background maintenance interval for the sharded backend (merge/split sweeps while idle; 0 disables)")
	n := flag.Int("n", 0, "synthetic points to preload")
	seed := flag.Int64("seed", 1, "preload workload seed")
	forcePolylog := flag.Bool("force-polylog", true, "pin the §3.3 small-k component instead of the automatic regime test")
	polylogF := flag.Int("polylog-f", 8, "§3.3 tree fanout f (0 = the paper's √(B·lg n))")
	polylogLeafCap := flag.Int("polylog-leaf-cap", 2048, "§3.3 leaf capacity (0 = the paper's f·l·B)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout of gateway->member calls")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "member health-probe interval in gateway mode")
	drain := flag.Duration("drain", 10*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	traceSample := flag.Float64("trace-sample", 0, "fraction of header-less requests to trace (requests carrying X-Topkd-Trace are always traced; 1 traces everything)")
	slowQuery := flag.Duration("slow-query", 0, "log requests at least this slow at warn level (0 disables)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error (per-request logs are debug)")
	batchWindow := flag.Duration("batch-window", 0, "group-commit window: coalesce concurrent single-op writes into ApplyBatch groups flushed after at most this long (0 disables batching unless -async-ack)")
	batchMax := flag.Int("batch-max", 0, "group-commit size trigger: flush a pending group at this many ops without waiting the window (0 = 256)")
	asyncAck := flag.Bool("async-ack", false, "acknowledge writes with 202 Accepted + a pollable /v1/outcome/{id} instead of waiting for the group commit (implies batching)")
	flag.Parse()

	level, err := parseLevel(*logLevel)
	if err != nil {
		log.Fatalf("topkd: -log-level: %v", err)
	}
	if err := validateTraceSample(*traceSample); err != nil {
		log.Fatalf("topkd: -trace-sample: %v", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	tel := obs.New(obs.Options{
		Logger:     logger,
		SampleRate: *traceSample,
		SlowQuery:  *slowQuery,
	})

	cfg := topk.ShardedConfig{
		Config: topk.Config{
			BlockWords:     *b,
			MemoryWords:    *m,
			ForcePolylog:   *forcePolylog,
			PolylogF:       *polylogF,
			PolylogLeafCap: *polylogLeafCap,
		},
		Shards:              *shards,
		MinMerge:            *minMerge,
		MaintenanceInterval: *maintenance,
	}
	var opts serve.Options
	if *rangeFlag != "" {
		lo, hi, err := parseRange(*rangeFlag)
		if err != nil {
			log.Fatalf("topkd: -range: %v", err)
		}
		opts.Lo, opts.Hi = lo, hi
	}

	var st topk.Store
	if *gateway != "" {
		st, err = topk.NewCluster(topk.ClusterConfig{
			Members:        strings.Split(*gateway, ","),
			Timeout:        *timeout,
			HealthInterval: *healthEvery,
			Logger:         logger,
		})
	} else {
		var pts []topk.Result
		if *n > 0 {
			pts = make([]topk.Result, 0, *n)
			for _, p := range workload.NewGen(*seed).Uniform(*n, 1e6) {
				pts = append(pts, topk.Result{X: p.X, Score: p.Score})
			}
		}
		st, err = newStore(*backend, cfg, pts)
	}
	if err != nil {
		log.Fatalf("topkd: %v", err)
	}
	// Group-commit write path: wrap the store so concurrent single-op
	// writes coalesce into ApplyBatch groups. -async-ack implies
	// batching (a 202 needs somewhere to park the outcome); the window
	// then defaults inside NewBatched.
	if *batchWindow > 0 || *batchMax > 0 || *asyncAck {
		st, err = topk.NewBatched(st, topk.BatchedConfig{
			Window:   *batchWindow,
			MaxBatch: *batchMax,
		})
		if err != nil {
			log.Fatalf("topkd: batcher: %v", err)
		}
		opts.AsyncAck = *asyncAck
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("topkd: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	mode := *backend
	if *gateway != "" {
		mode = fmt.Sprintf("gateway(%s)", *gateway)
	}
	opts.Obs = tel
	var h http.Handler = serve.New(st, opts)
	if *pprofFlag {
		h = withPprof(h)
	}
	logger.Info("serving",
		slog.String("backend", mode),
		slog.String("addr", ln.Addr().String()),
		slog.Int("n", st.Len()),
		slog.String("band", *rangeFlag),
		slog.Int("shards", *shards),
		slog.Duration("maintenance", *maintenance),
		slog.Float64("trace_sample", *traceSample),
		slog.Duration("slow_query", *slowQuery),
		slog.Bool("pprof", *pprofFlag),
		slog.Duration("batch_window", *batchWindow),
		slog.Int("batch_max", *batchMax),
		slog.Bool("async_ack", *asyncAck),
	)
	if err := serveLoop(ctx, &http.Server{Handler: h}, ln, *drain, tel, logger); err != nil {
		log.Fatalf("topkd: %v", err)
	}
	// Stop background loops (sharded maintenance, cluster health
	// prober) after the last in-flight request has drained.
	if c, ok := st.(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			log.Fatalf("topkd: close: %v", err)
		}
	}
	logger.Info("exiting")
}

// parseLevel maps a -log-level flag value to its slog level.
// validateTraceSample rejects sample rates that cannot mean anything:
// NaN, negative, or above 1. Silently accepting them made -trace-sample
// 1.5 look like "sample more" when it just clamps to everything, and
// NaN sampled nothing while looking enabled.
func validateTraceSample(v float64) error {
	if math.IsNaN(v) {
		return fmt.Errorf("NaN is not a sample rate (want a fraction in [0, 1])")
	}
	if v < 0 || v > 1 {
		return fmt.Errorf("sample rate %v outside [0, 1] (0 traces header-carrying requests only, 1 traces everything)", v)
	}
	return nil
}

func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown level %q (want debug, info, warn or error)", s)
	}
}

// withPprof mounts net/http/pprof beside the API handler tree. Gated
// behind -pprof: the profile endpoints expose internals and can be
// made to burn CPU, so they are opt-in.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

// parseRange parses a -range flag of the form "lo:hi" where either end
// may be empty for an open (infinite) end. The band is [lo, hi).
func parseRange(s string) (lo, hi float64, err error) {
	cut := strings.IndexByte(s, ':')
	if cut < 0 {
		return 0, 0, fmt.Errorf("want lo:hi (open ends empty), got %q", s)
	}
	lo, hi = math.Inf(-1), math.Inf(1)
	if part := s[:cut]; part != "" {
		if lo, err = strconv.ParseFloat(part, 64); err != nil {
			return 0, 0, fmt.Errorf("bad lo %q: %v", part, err)
		}
	}
	if part := s[cut+1:]; part != "" {
		if hi, err = strconv.ParseFloat(part, 64); err != nil {
			return 0, 0, fmt.Errorf("bad hi %q: %v", part, err)
		}
	}
	if !(lo < hi) {
		return 0, 0, fmt.Errorf("empty band [%v, %v)", lo, hi)
	}
	return lo, hi, nil
}

// serveLoop runs srv on ln until the listener fails or ctx is
// cancelled (SIGINT/SIGTERM via signal.NotifyContext in main). On
// cancellation it drains: Shutdown stops accepting, lets in-flight
// requests — a /v1/batch mid-write included — complete within the
// drain budget, and returns nil on a clean exit so topkd exits 0. The
// shutdown summary logs how long the drain took and how many requests
// were in flight when it began (tel and logger may be nil in tests).
func serveLoop(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration, tel *obs.Telemetry, logger *slog.Logger) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // Serve only returns on failure (ErrServerClosed needs Shutdown)
	case <-ctx.Done():
		var inFlight int64
		if tel != nil {
			inFlight = tel.InFlight()
		}
		start := time.Now()
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := srv.Shutdown(sctx)
		if logger != nil {
			logger.Info("drained",
				slog.Duration("drain", time.Since(start)),
				slog.Int64("in_flight", inFlight),
			)
		}
		return err
	}
}

// newStore builds the chosen local backend behind the Store interface.
func newStore(backend string, cfg topk.ShardedConfig, pts []topk.Result) (topk.Store, error) {
	switch backend {
	case "sharded":
		if len(pts) > 0 {
			return topk.LoadSharded(cfg, pts)
		}
		return topk.NewSharded(cfg)
	case "single":
		var idx *topk.Index
		var err error
		if len(pts) > 0 {
			idx, err = topk.Load(cfg.Config, pts)
		} else {
			idx, err = topk.New(cfg.Config)
		}
		if err != nil {
			return nil, err
		}
		// An Index is one sequential EM machine; one mutex turns it
		// into a (serialized) Store for comparison runs.
		return serve.LockedIndex(idx), nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want sharded or single)", backend)
	}
}

// newServer returns the topkd handler tree over st with no member
// band — the shape every pre-cluster test mounts.
func newServer(st topk.Store) http.Handler { return serve.New(st, serve.Options{}) }
