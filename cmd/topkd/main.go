// Command topkd serves a topk.Store over HTTP/JSON — the network face
// of the serving stack. Handlers are written purely against the
// topk.Store interface, so the backend is a startup flag: the default
// concurrent Sharded router (net/http's per-connection goroutines
// become router concurrency, no extra locking), or a single
// sequential Index guarded by one mutex for comparison runs.
//
// The API is versioned under /v1; the unversioned paths from the
// first release are kept as thin aliases of the same handlers.
//
//	$ topkd -addr :8080 -shards 8 -n 100000 -maintenance 30s
//	$ curl -s 'localhost:8080/v1/topk?x1=100&x2=200&k=3'
//	$ curl -s 'localhost:8080/v1/topk?x1=100&x2=200&k=3&offset=3'   # page 2
//	$ curl -s localhost:8080/v1/metrics                             # Prometheus text format
//	$ curl -s -X POST localhost:8080/v1/insert -d '{"x":150.5,"score":9.9}'
//	$ curl -s -X POST localhost:8080/v1/delete -d '{"x":150.5,"score":9.9}'
//	$ curl -s -X POST localhost:8080/v1/batch -d '{"ops":[
//	      {"op":"insert","x":1.5,"score":7.25},
//	      {"op":"delete","x":150.5,"score":9.9},
//	      {"op":"query","x1":0,"x2":100,"k":5}]}'
//	$ curl -s 'localhost:8080/v1/count?x1=0&x2=1000'
//	$ curl -s localhost:8080/v1/stats
//
// Errors are structured: {"error":{"code":"duplicate_position",
// "message":"..."}} with the code derived from the topk sentinel
// errors (duplicate_position and duplicate_score map to 409,
// invalid_point and malformed requests to 400).
//
// /v1/stats reports the fleet I/O meters and, on the sharded backend,
// the shard count and split/merge lifecycle counters; /v1/metrics is
// the same telemetry in Prometheus text format (plus the topology
// epoch), served from the lock-free snapshot so scraping never
// contends with traffic. -maintenance starts the router's background
// merge/split sweep so an idle fleet keeps adapting. On SIGINT/SIGTERM
// the server drains in-flight requests (bounded by -drain), stops the
// maintenance loop and exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	topk "repro"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backend := flag.String("backend", "sharded", "index backend: sharded | single")
	shards := flag.Int("shards", 8, "maximum shard count (sharded backend)")
	b := flag.Int("B", 64, "block size in words per shard disk")
	m := flag.Int("M", 0, "buffer-pool words (fleet total when sharded; 0 = default)")
	minMerge := flag.Int("min-merge", 0, "shard size floor of the delete-triggered merge policy (0 = adaptive, starting at min-split/2; negative disables merging)")
	maintenance := flag.Duration("maintenance", 0, "background maintenance interval for the sharded backend (merge/split sweeps while idle; 0 disables)")
	n := flag.Int("n", 0, "synthetic points to preload")
	seed := flag.Int64("seed", 1, "preload workload seed")
	forcePolylog := flag.Bool("force-polylog", true, "pin the §3.3 small-k component instead of the automatic regime test")
	polylogF := flag.Int("polylog-f", 8, "§3.3 tree fanout f (0 = the paper's √(B·lg n))")
	polylogLeafCap := flag.Int("polylog-leaf-cap", 2048, "§3.3 leaf capacity (0 = the paper's f·l·B)")
	drain := flag.Duration("drain", 10*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	flag.Parse()

	cfg := topk.ShardedConfig{
		Config: topk.Config{
			BlockWords:     *b,
			MemoryWords:    *m,
			ForcePolylog:   *forcePolylog,
			PolylogF:       *polylogF,
			PolylogLeafCap: *polylogLeafCap,
		},
		Shards:              *shards,
		MinMerge:            *minMerge,
		MaintenanceInterval: *maintenance,
	}
	var pts []topk.Result
	if *n > 0 {
		pts = make([]topk.Result, 0, *n)
		for _, p := range workload.NewGen(*seed).Uniform(*n, 1e6) {
			pts = append(pts, topk.Result{X: p.X, Score: p.Score})
		}
	}
	st, err := newStore(*backend, cfg, pts)
	if err != nil {
		log.Fatalf("topkd: %v", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("topkd: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("topkd: serving %s backend (n=%d) on %s", *backend, st.Len(), ln.Addr())
	if err := serve(ctx, &http.Server{Handler: newServer(st)}, ln, *drain); err != nil {
		log.Fatalf("topkd: %v", err)
	}
	// Stop the background maintenance loop (sharded backend) after the
	// last in-flight request has drained.
	if c, ok := st.(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			log.Fatalf("topkd: close: %v", err)
		}
	}
	log.Printf("topkd: drained, exiting")
}

// serve runs srv on ln until the listener fails or ctx is cancelled
// (SIGINT/SIGTERM via signal.NotifyContext in main). On cancellation
// it drains: Shutdown stops accepting, lets in-flight requests — a
// /v1/batch mid-write included — complete within the drain budget,
// and returns nil on a clean exit so topkd exits 0.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // Serve only returns on failure (ErrServerClosed needs Shutdown)
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}

// newStore builds the chosen backend behind the Store interface.
func newStore(backend string, cfg topk.ShardedConfig, pts []topk.Result) (topk.Store, error) {
	switch backend {
	case "sharded":
		if len(pts) > 0 {
			return topk.LoadSharded(cfg, pts)
		}
		return topk.NewSharded(cfg)
	case "single":
		var idx *topk.Index
		var err error
		if len(pts) > 0 {
			idx, err = topk.Load(cfg.Config, pts)
		} else {
			idx, err = topk.New(cfg.Config)
		}
		if err != nil {
			return nil, err
		}
		// An Index is one sequential EM machine; one mutex turns it
		// into a (serialized) Store for comparison runs.
		return &lockedStore{idx: idx}, nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want sharded or single)", backend)
	}
}

// lockedStore serializes a sequential *Index behind the Store
// interface. It exists so -backend single can answer concurrent HTTP
// traffic correctly (if slowly) — the measured argument for the
// sharded backend.
type lockedStore struct {
	mu  sync.Mutex
	idx *topk.Index
}

func (l *lockedStore) Len() int { l.mu.Lock(); defer l.mu.Unlock(); return l.idx.Len() }
func (l *lockedStore) Insert(pos, score float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idx.Insert(pos, score)
}
func (l *lockedStore) Delete(pos, score float64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idx.Delete(pos, score)
}
func (l *lockedStore) ApplyBatch(ops []topk.BatchOp) []error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idx.ApplyBatch(ops)
}
func (l *lockedStore) TopK(x1, x2 float64, k int) []topk.Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idx.TopK(x1, x2, k)
}
func (l *lockedStore) QueryBatch(qs []topk.Query) [][]topk.Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idx.QueryBatch(qs)
}
func (l *lockedStore) Count(x1, x2 float64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idx.Count(x1, x2)
}
func (l *lockedStore) Stats() topk.Stats { l.mu.Lock(); defer l.mu.Unlock(); return l.idx.Stats() }
func (l *lockedStore) ResetStats()       { l.mu.Lock(); defer l.mu.Unlock(); l.idx.ResetStats() }
func (l *lockedStore) DropCache()        { l.mu.Lock(); defer l.mu.Unlock(); l.idx.DropCache() }

// pointReq is the body of /v1/insert and /v1/delete.
type pointReq struct {
	X     float64 `json:"x"`
	Score float64 `json:"score"`
}

// resultJSON mirrors topk.Result with lowercase keys.
type resultJSON struct {
	X     float64 `json:"x"`
	Score float64 `json:"score"`
}

func toJSON(res []topk.Result) []resultJSON {
	out := make([]resultJSON, len(res))
	for i, p := range res {
		out[i] = resultJSON{X: p.X, Score: p.Score}
	}
	return out
}

// batchOp is one element of a /v1/batch request: op is "insert",
// "delete" (x, score) or "query" (x1, x2, k).
type batchOp struct {
	Op    string  `json:"op"`
	X     float64 `json:"x"`
	Score float64 `json:"score"`
	X1    float64 `json:"x1"`
	X2    float64 `json:"x2"`
	K     int     `json:"k"`
}

// batchItem is one element of a /v1/batch response, aligned with the
// request ops. Updates carry ok (+error when rejected); queries carry
// their results.
type batchItem struct {
	OK      bool         `json:"ok"`
	Error   *errJSON     `json:"error,omitempty"`
	Results []resultJSON `json:"results,omitempty"`
}

// newServer returns the topkd handler tree over st. Handlers use only
// the topk.Store interface; Sharded-specific introspection (shard
// count in /v1/stats) is probed through an optional interface.
func newServer(st topk.Store) http.Handler {
	mux := http.NewServeMux()

	// handle registers h under /v1/pattern and, as a compatibility
	// alias, under the unversioned path of the first release.
	handle := func(method, pattern string, h http.HandlerFunc) {
		mux.HandleFunc(method+" /v1"+pattern, h)
		mux.HandleFunc(method+" "+pattern, h)
	}

	handle("POST", "/insert", func(w http.ResponseWriter, r *http.Request) {
		var req pointReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "bad json: %v", err)
			return
		}
		// Insert is atomic check-and-insert under the shard lock, so
		// concurrent duplicates race to one 200 and one 409 — and a
		// duplicate score anywhere in the fleet is a 409 too.
		if err := st.Insert(req.X, req.Score); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"ok": true, "n": st.Len()})
	})

	handle("POST", "/delete", func(w http.ResponseWriter, r *http.Request) {
		var req pointReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "bad json: %v", err)
			return
		}
		found := st.Delete(req.X, req.Score)
		writeJSON(w, map[string]any{"found": found, "n": st.Len()})
	})

	handle("POST", "/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Ops []batchOp `json:"ops"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "bad json: %v", err)
			return
		}
		items, err := runBatch(st, req.Ops)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "%v", err)
			return
		}
		writeJSON(w, map[string]any{"results": items, "n": st.Len()})
	})

	handle("GET", "/topk", func(w http.ResponseWriter, r *http.Request) {
		x1, err1 := queryFloat(r, "x1")
		x2, err2 := queryFloat(r, "x2")
		k, err3 := queryInt(r, "k")
		if err1 != nil || err2 != nil || err3 != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "need float x1, x2 and int k")
			return
		}
		// Pagination for large k: ?offset=N skips the N highest-scoring
		// qualifying points, so a client can walk a huge answer in
		// pages of k without the server ever allocating beyond the live
		// size (the clamp below caps offset+k at n first).
		off := 0
		if s := r.URL.Query().Get("offset"); s != "" {
			var err error
			if off, err = strconv.Atoi(s); err != nil || off < 0 {
				httpError(w, http.StatusBadRequest, "bad_request", "offset must be a non-negative int")
				return
			}
		}
		res := st.TopK(x1, x2, clampPage(st, off, k))
		if off < len(res) {
			res = res[off:]
		} else {
			res = nil
		}
		writeJSON(w, map[string]any{"results": toJSON(res), "offset": off})
	})

	handle("GET", "/count", func(w http.ResponseWriter, r *http.Request) {
		x1, err1 := queryFloat(r, "x1")
		x2, err2 := queryFloat(r, "x2")
		if err1 != nil || err2 != nil {
			httpError(w, http.StatusBadRequest, "bad_request", "need float x1 and x2")
			return
		}
		writeJSON(w, map[string]any{"count": st.Count(x1, x2)})
	})

	// Prometheus text-format metrics, the machine-scrapable twin of the
	// JSON /v1/stats. On the sharded backend everything here is served
	// from the topology snapshot, atomic counters and brief per-shard
	// meter reads — a scrape never takes the topology lock, so it
	// cannot stall lifecycle or update writers (on -backend single the
	// store mutex still serializes the scrape with traffic, like every
	// other request there).
	handle("GET", "/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := st.Stats()
		var b strings.Builder
		metric := func(name, typ, help string, v int64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
		}
		metric("topkd_points_live", "gauge", "Number of live points.", int64(st.Len()))
		metric("topkd_io_reads_total", "counter", "Block reads charged by the simulated EM disks (retired disks included).", s.Reads)
		metric("topkd_io_writes_total", "counter", "Block writes charged by the simulated EM disks (retired disks included).", s.Writes)
		metric("topkd_blocks_live", "gauge", "Disk blocks currently occupied fleet-wide.", s.BlocksLive)
		metric("topkd_blocks_peak", "gauge", "High-water mark of the fleet-wide live-block total.", s.BlocksPeak)
		if sh, ok := st.(interface{ NumShards() int }); ok {
			metric("topkd_shards", "gauge", "Current shard count.", int64(sh.NumShards()))
		}
		if lc, ok := st.(interface {
			Splits() int64
			Merges() int64
		}); ok {
			metric("topkd_shard_splits_total", "counter", "Automatic shard splits since startup.", lc.Splits())
			metric("topkd_shard_merges_total", "counter", "Automatic shard merges since startup.", lc.Merges())
		}
		if ep, ok := st.(interface{ Epoch() int64 }); ok {
			// A gauge, not a counter: it tracks the snapshot version,
			// which also advances on stats resets, not only on
			// split/merge/rebalance lifecycle events.
			metric("topkd_topology_epoch", "gauge", "Topology snapshot version; increments on every snapshot publish (splits, merges, rebalances, stats resets).", ep.Epoch())
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})

	handle("GET", "/stats", func(w http.ResponseWriter, r *http.Request) {
		s := st.Stats()
		out := map[string]any{
			"n":           st.Len(),
			"reads":       s.Reads,
			"writes":      s.Writes,
			"blocks_live": s.BlocksLive,
			"blocks_peak": s.BlocksPeak,
		}
		if sh, ok := st.(interface{ NumShards() int }); ok {
			out["shards"] = sh.NumShards()
		}
		// Shard-lifecycle counters: how many automatic splits and
		// delete-triggered merges the router has performed.
		if lc, ok := st.(interface {
			Splits() int64
			Merges() int64
		}); ok {
			out["splits"] = lc.Splits()
			out["merges"] = lc.Merges()
		}
		writeJSON(w, out)
	})

	return withRecover(mux)
}

// runBatch executes a mixed /v1/batch payload: the update ops run
// first as one ApplyBatch, then the query ops as one QueryBatch, and
// the per-op outcomes are stitched back into request order. Queries
// therefore observe every update of their own batch (on Sharded, the
// documented caveat applies within the update half: an insert reusing
// a score deleted on another shard in the same batch may lose the
// race and be rejected).
func runBatch(st topk.Store, ops []batchOp) ([]batchItem, error) {
	updates := make([]topk.BatchOp, 0, len(ops))
	updateAt := make([]int, 0, len(ops))
	queries := make([]topk.Query, 0)
	queryAt := make([]int, 0)
	for i, op := range ops {
		switch op.Op {
		case "insert":
			updates = append(updates, topk.BatchOp{X: op.X, Score: op.Score})
			updateAt = append(updateAt, i)
		case "delete":
			updates = append(updates, topk.BatchOp{Delete: true, X: op.X, Score: op.Score})
			updateAt = append(updateAt, i)
		case "query":
			queries = append(queries, topk.Query{X1: op.X1, X2: op.X2, K: op.K})
			queryAt = append(queryAt, i)
		default:
			return nil, fmt.Errorf("op %d: unknown op %q (want insert, delete or query)", i, op.Op)
		}
	}
	items := make([]batchItem, len(ops))
	for j, err := range st.ApplyBatch(updates) {
		if err != nil {
			items[updateAt[j]] = batchItem{Error: toErrJSON(err)}
		} else {
			items[updateAt[j]] = batchItem{OK: true}
		}
	}
	// Clamp k only now: the batch's own inserts may have grown the
	// live set the queries are about to observe.
	for j := range queries {
		queries[j].K = clampK(st, queries[j].K)
	}
	for j, res := range st.QueryBatch(queries) {
		items[queryAt[j]] = batchItem{OK: true, Results: toJSON(res)}
	}
	return items, nil
}

// clampK caps a client k at the live size: k > n returns everything
// anyway, and the selection paths preallocate k-sized buffers, so an
// absurd client k must not size an allocation.
func clampK(st topk.Store, k int) int {
	if n := st.Len(); k > n {
		return n
	}
	return k
}

// clampPage sizes the fetch for a paginated /v1/topk: the offset
// points plus the page of k, capped at the live size. A page that is
// empty by construction — k ≤ 0, or the offset at/past the live size —
// fetches nothing at all, so a cheap request can never force a full
// materialization it then discards. The comparison form avoids
// overflow when a client sends offset and k both near MaxInt.
func clampPage(st topk.Store, off, k int) int {
	n := st.Len()
	if k <= 0 || off >= n {
		return 0
	}
	if k > n {
		k = n
	}
	if off > n-k {
		return n
	}
	return off + k
}

// withRecover turns handler panics into JSON 500s. Contract
// violations return errors in API v1, so a panic here is an internal
// invariant failure — the router releases its locks on panic
// (internal/shard unlocks with defer), so one poisoned request cannot
// wedge the fleet; without this middleware net/http would just sever
// the connection.
func withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				log.Printf("topkd: %s %s panicked: %v", r.Method, r.URL.Path, v)
				httpError(w, http.StatusInternalServerError, "internal", "internal error: %v", v)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func queryFloat(r *http.Request, key string) (float64, error) {
	return strconv.ParseFloat(r.URL.Query().Get(key), 64)
}

func queryInt(r *http.Request, key string) (int, error) {
	return strconv.Atoi(r.URL.Query().Get(key))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("topkd: encode: %v", err)
	}
}

// errJSON is the structured error body: {"error":{"code":..,"message":..}}.
type errJSON struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errCode maps a topk sentinel error to an HTTP status and a stable
// machine-readable code.
func errCode(err error) (int, string) {
	switch {
	case errors.Is(err, topk.ErrDuplicatePosition):
		return http.StatusConflict, "duplicate_position"
	case errors.Is(err, topk.ErrDuplicateScore):
		return http.StatusConflict, "duplicate_score"
	case errors.Is(err, topk.ErrInvalidPoint):
		return http.StatusBadRequest, "invalid_point"
	case errors.Is(err, topk.ErrNotFound):
		return http.StatusNotFound, "not_found"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func toErrJSON(err error) *errJSON {
	_, code := errCode(err)
	return &errJSON{Code: code, Message: err.Error()}
}

// writeErr renders a store error with its mapped status and code.
func writeErr(w http.ResponseWriter, err error) {
	status, code := errCode(err)
	httpError(w, status, code, "%v", err)
}

func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": errJSON{Code: code, Message: fmt.Sprintf(format, args...)},
	})
}
