// Command topkd serves a topk.Sharded index over HTTP/JSON — the
// minimal network face of the concurrent serving layer. Handlers call
// straight into the Sharded router, which is safe for concurrent use,
// so the server needs no locking of its own; net/http's per-connection
// goroutines become the router's query/update concurrency.
//
//	$ topkd -addr :8080 -shards 8 -n 100000
//	$ curl -s 'localhost:8080/topk?x1=100&x2=200&k=3'
//	$ curl -s -X POST localhost:8080/insert -d '{"x":150.5,"score":9.9}'
//	$ curl -s -X POST localhost:8080/delete -d '{"x":150.5,"score":9.9}'
//	$ curl -s 'localhost:8080/count?x1=0&x2=1000'
//	$ curl -s localhost:8080/stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"

	topk "repro"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 8, "maximum shard count")
	b := flag.Int("B", 64, "block size in words per shard disk")
	n := flag.Int("n", 0, "synthetic points to preload")
	seed := flag.Int64("seed", 1, "preload workload seed")
	flag.Parse()

	cfg := topk.ShardedConfig{
		Config: topk.Config{BlockWords: *b, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048},
		Shards: *shards,
	}
	var idx *topk.Sharded
	if *n > 0 {
		pts := make([]topk.Result, 0, *n)
		for _, p := range workload.NewGen(*seed).Uniform(*n, 1e6) {
			pts = append(pts, topk.Result{X: p.X, Score: p.Score})
		}
		idx = topk.LoadSharded(cfg, pts)
	} else {
		idx = topk.NewSharded(cfg)
	}
	log.Printf("topkd: serving %s on %s", idx, *addr)
	log.Fatal(http.ListenAndServe(*addr, newServer(idx)))
}

// pointReq is the body of /insert and /delete.
type pointReq struct {
	X     float64 `json:"x"`
	Score float64 `json:"score"`
}

// resultJSON mirrors topk.Result with lowercase keys.
type resultJSON struct {
	X     float64 `json:"x"`
	Score float64 `json:"score"`
}

// newServer returns the topkd handler tree over idx.
func newServer(idx *topk.Sharded) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /insert", func(w http.ResponseWriter, r *http.Request) {
		var req pointReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		// The index's contract is a set: distinct positions (and
		// scores). A single-op batch is the atomic check-and-insert —
		// it rejects an occupied position under the shard lock instead
		// of panicking, so concurrent duplicates race to one 200 and
		// one 409. (A duplicate *score* is not detected: on the same
		// shard it surfaces as a structure panic → 500 via withRecover;
		// across shards it is accepted and violates the distinct-score
		// contract — callers own score uniqueness, as with topk.Index.)
		if ok := idx.ApplyBatch([]topk.BatchOp{{X: req.X, Score: req.Score}}); !ok[0] {
			httpError(w, http.StatusConflict, "position %v already present", req.X)
			return
		}
		writeJSON(w, map[string]any{"ok": true, "n": idx.Len()})
	})

	mux.HandleFunc("POST /delete", func(w http.ResponseWriter, r *http.Request) {
		var req pointReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		found := idx.Delete(req.X, req.Score)
		writeJSON(w, map[string]any{"found": found, "n": idx.Len()})
	})

	mux.HandleFunc("GET /topk", func(w http.ResponseWriter, r *http.Request) {
		x1, err1 := queryFloat(r, "x1")
		x2, err2 := queryFloat(r, "x2")
		k, err3 := queryInt(r, "k")
		if err1 != nil || err2 != nil || err3 != nil {
			httpError(w, http.StatusBadRequest, "need float x1, x2 and int k")
			return
		}
		// Clamp k to the live size: k > n returns everything anyway,
		// and the selection paths preallocate k-sized buffers, so an
		// absurd client k must not size an allocation.
		if n := idx.Len(); k > n {
			k = n
		}
		res := idx.TopK(x1, x2, k)
		out := make([]resultJSON, len(res))
		for i, p := range res {
			out[i] = resultJSON{X: p.X, Score: p.Score}
		}
		writeJSON(w, map[string]any{"results": out})
	})

	mux.HandleFunc("GET /count", func(w http.ResponseWriter, r *http.Request) {
		x1, err1 := queryFloat(r, "x1")
		x2, err2 := queryFloat(r, "x2")
		if err1 != nil || err2 != nil {
			httpError(w, http.StatusBadRequest, "need float x1 and x2")
			return
		}
		writeJSON(w, map[string]any{"count": idx.Count(x1, x2)})
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		s := idx.Stats()
		writeJSON(w, map[string]any{
			"n":           idx.Len(),
			"shards":      idx.NumShards(),
			"reads":       s.Reads,
			"writes":      s.Writes,
			"blocks_live": s.BlocksLive,
			"blocks_peak": s.BlocksPeak,
		})
	})

	return withRecover(mux)
}

// withRecover turns handler panics into JSON 500s. The router releases
// its locks on panic (internal/shard unlocks with defer), so one
// contract-violating request cannot wedge the fleet; without this
// middleware net/http would just sever the connection.
func withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				log.Printf("topkd: %s %s panicked: %v", r.Method, r.URL.Path, v)
				httpError(w, http.StatusInternalServerError, "internal error: %v", v)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func queryFloat(r *http.Request, key string) (float64, error) {
	return strconv.ParseFloat(r.URL.Query().Get(key), 64)
}

func queryInt(r *http.Request, key string) (int, error) {
	return strconv.Atoi(r.URL.Query().Get(key))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("topkd: encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
