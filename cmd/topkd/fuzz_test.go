package main

import (
	"math"
	"testing"
)

// FuzzParseRange drives the -range flag grammar (lo:hi, open ends
// empty) with arbitrary input. The parser must never panic, and an
// accepted band must be well-formed: lo strictly below hi, neither
// NaN — the property the gateway's banded mode depends on.
func FuzzParseRange(f *testing.F) {
	for _, seed := range []string{
		":", "1:2", "-10:10", ":5", "5:", "1e300:1e301", "-1e300:",
		"a:b", "1:1", "2:1", "", ":::", "NaN:NaN", "+Inf:-Inf",
		"0x1p10:0x1p11", "1_000:2_000", "-0:0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		lo, hi, err := parseRange(s)
		if err != nil {
			return
		}
		if !(lo < hi) {
			t.Fatalf("parseRange(%q) accepted empty band [%v, %v)", s, lo, hi)
		}
		if math.IsNaN(lo) || math.IsNaN(hi) {
			t.Fatalf("parseRange(%q) accepted NaN bound [%v, %v)", s, lo, hi)
		}
	})
}
