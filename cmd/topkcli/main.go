// Command topkcli is an interactive shell over the topk index: load
// synthetic data, insert, delete, query, and watch the I/O meter. It
// exists to poke at the structure by hand.
//
//	$ topkcli -n 10000
//	> top 100 200 5
//	> insert 150.5 9.99
//	> delete 150.5 9.99
//	> count 0 1000
//	> stats
//	> help
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	topk "repro"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 10000, "synthetic points to preload")
	b := flag.Int("B", 64, "block size in words")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	idx, err := topk.New(topk.Config{BlockWords: *b, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := workload.NewGen(*seed)
	for _, p := range gen.Uniform(*n, 1e6) {
		if err := idx.Insert(p.X, p.Score); err != nil {
			fmt.Fprintf(os.Stderr, "preload: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("loaded %d points (B=%d, k-threshold %d, %s)\n",
		idx.Len(), idx.BlockSize(), idx.KThreshold(), idx.Regime())
	fmt.Println(`commands: top x1 x2 k | count x1 x2 | insert x score | delete x score | stats | reset | quit`)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit", "q":
			return
		case "help":
			fmt.Println("top x1 x2 k | count x1 x2 | insert x score | delete x score | stats | reset | quit")
		case "stats":
			s := idx.Stats()
			fmt.Printf("reads=%d writes=%d live=%d peak=%d n=%d\n",
				s.Reads, s.Writes, s.BlocksLive, s.BlocksPeak, idx.Len())
		case "reset":
			idx.ResetStats()
			idx.DropCache()
			fmt.Println("meter reset, cache dropped")
		case "top":
			args, err := floats(fields[1:], 3)
			if err != nil {
				fmt.Println("usage: top x1 x2 k")
				continue
			}
			before := idx.Stats()
			res := idx.TopK(args[0], args[1], int(args[2]))
			after := idx.Stats()
			for i, r := range res {
				fmt.Printf("%3d. x=%.4f score=%.4f\n", i+1, r.X, r.Score)
			}
			fmt.Printf("(%d results, %d read I/Os)\n", len(res), after.Reads-before.Reads)
		case "count":
			args, err := floats(fields[1:], 2)
			if err != nil {
				fmt.Println("usage: count x1 x2")
				continue
			}
			fmt.Println(idx.Count(args[0], args[1]))
		case "insert":
			args, err := floats(fields[1:], 2)
			if err != nil {
				fmt.Println("usage: insert x score")
				continue
			}
			if err := idx.Insert(args[0], args[1]); err != nil {
				fmt.Printf("rejected: %v\n", err)
			} else {
				fmt.Println("ok")
			}
		case "delete":
			args, err := floats(fields[1:], 2)
			if err != nil {
				fmt.Println("usage: delete x score")
				continue
			}
			fmt.Println(idx.Delete(args[0], args[1]))
		default:
			fmt.Printf("unknown command %q (try help)\n", fields[0])
		}
	}
}

func floats(fields []string, want int) ([]float64, error) {
	if len(fields) != want {
		return nil, fmt.Errorf("want %d args", want)
	}
	out := make([]float64, want)
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
