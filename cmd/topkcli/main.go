// Command topkcli is an interactive shell over the topk index: load
// synthetic data, insert, delete, query, and watch the I/O meter. It
// exists to poke at the structure by hand.
//
//	$ topkcli -n 10000
//	> top 100 200 5
//	> insert 150.5 9.99
//	> delete 150.5 9.99
//	> count 0 1000
//	> stats
//	> help
//
// With -bulk W the preload drives the group-commit write path instead
// of direct sequential inserts: W concurrent workers push single-op
// writes through a topk.Batched wrapper (the same layer topkd mounts
// behind -batch-window), and the shell prints the achieved write qps
// plus the batcher's group statistics. Shell insert/delete then keep
// flowing through the batched store, so the feature is live-drivable
// without writing a load generator.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	topk "repro"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 10000, "synthetic points to preload")
	b := flag.Int("B", 64, "block size in words")
	seed := flag.Int64("seed", 1, "workload seed")
	bulk := flag.Int("bulk", 0, "preload through the group-commit write path with this many concurrent workers (0 = sequential direct inserts)")
	addr := flag.String("addr", "", "topkd base URL for the remote commands (trace <id>); e.g. localhost:8080")
	flag.Parse()

	idx, err := topk.New(topk.Config{BlockWords: *b, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := workload.NewGen(*seed)
	pts := gen.Uniform(*n, 1e6)

	// st is what the shell talks to: the bare Index, or — with -bulk —
	// the batched store over it (an Index is sequential, so the batcher
	// flushes through a one-mutex guard; the win here is the grouped
	// flush amortizing the per-op overhead, and having the path live).
	var st topk.Store = idx
	if *bulk > 0 {
		bt, err := topk.NewBatched(serve.LockedIndex(idx), topk.BatchedConfig{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer bt.Close()
		st = bt
		start := time.Now()
		var wg sync.WaitGroup
		var rejected sync.Map
		for w := 0; w < *bulk; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(pts); i += *bulk {
					if err := bt.Insert(pts[i].X, pts[i].Score); err != nil {
						rejected.Store(i, err)
					}
				}
			}(w)
		}
		wg.Wait()
		var nrej int
		rejected.Range(func(k, v any) bool { nrej++; return true })
		if nrej > 0 {
			fmt.Fprintf(os.Stderr, "bulk preload: %d rejected\n", nrej)
		}
		el := time.Since(start)
		s := bt.BatcherStats()
		fmt.Printf("bulk preload: %d points, %d workers, %.0f writes/s (%d groups, max group %d)\n",
			len(pts)-nrej, *bulk, float64(len(pts))/el.Seconds(), s.Flushes, s.MaxGroup)
	} else {
		for _, p := range pts {
			if err := idx.Insert(p.X, p.Score); err != nil {
				fmt.Fprintf(os.Stderr, "preload: %v\n", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("loaded %d points (B=%d, k-threshold %d, %s)\n",
		st.Len(), idx.BlockSize(), idx.KThreshold(), idx.Regime())
	fmt.Println(`commands: top x1 x2 k | count x1 x2 | insert x score | delete x score | stats | reset | trace <id> | quit`)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit", "q":
			return
		case "help":
			fmt.Println("top x1 x2 k | count x1 x2 | insert x score | delete x score | stats | reset | trace <id> | quit")
		case "stats":
			s := st.Stats()
			fmt.Printf("reads=%d writes=%d live=%d peak=%d n=%d\n",
				s.Reads, s.Writes, s.BlocksLive, s.BlocksPeak, st.Len())
			if bs, ok := st.(interface{ BatcherStats() topk.BatcherStats }); ok {
				b := bs.BatcherStats()
				fmt.Printf("batcher: ops=%d groups=%d max_group=%d pending=%d\n",
					b.Ops, b.Flushes, b.MaxGroup, b.Pending)
			}
		case "reset":
			st.ResetStats()
			st.DropCache()
			fmt.Println("meter reset, cache dropped")
		case "trace":
			if len(fields) != 2 {
				fmt.Println("usage: trace <id>    (needs -addr pointing at a topkd)")
				continue
			}
			if *addr == "" {
				fmt.Println("trace needs -addr pointing at a topkd (e.g. -addr localhost:8080)")
				continue
			}
			if err := printTrace(*addr, fields[1]); err != nil {
				fmt.Printf("trace: %v\n", err)
			}
		case "top":
			args, err := floats(fields[1:], 3)
			if err != nil {
				fmt.Println("usage: top x1 x2 k")
				continue
			}
			before := st.Stats()
			res := st.TopK(args[0], args[1], int(args[2]))
			after := st.Stats()
			for i, r := range res {
				fmt.Printf("%3d. x=%.4f score=%.4f\n", i+1, r.X, r.Score)
			}
			fmt.Printf("(%d results, %d read I/Os)\n", len(res), after.Reads-before.Reads)
		case "count":
			args, err := floats(fields[1:], 2)
			if err != nil {
				fmt.Println("usage: count x1 x2")
				continue
			}
			fmt.Println(st.Count(args[0], args[1]))
		case "insert":
			args, err := floats(fields[1:], 2)
			if err != nil {
				fmt.Println("usage: insert x score")
				continue
			}
			if err := st.Insert(args[0], args[1]); err != nil {
				fmt.Printf("rejected: %v\n", err)
			} else {
				fmt.Println("ok")
			}
		case "delete":
			args, err := floats(fields[1:], 2)
			if err != nil {
				fmt.Println("usage: delete x score")
				continue
			}
			fmt.Println(st.Delete(args[0], args[1]))
		default:
			fmt.Printf("unknown command %q (try help)\n", fields[0])
		}
	}
}

// printTrace fetches a finished trace from a topkd and pretty-prints
// the span tree — on a gateway this is the stitched cross-process
// tree: root, per-band RPC spans, and each member's handler and Store
// spans indented beneath the RPC that issued them.
func printTrace(addr, id string) error {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := http.Get(base + "/v1/trace/" + url.PathEscape(id))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("http %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var tr obs.TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return fmt.Errorf("bad response body: %v", err)
	}
	fmt.Printf("trace %s (status %d)\n", tr.ID, tr.Status)
	printSpan(tr.Root, 0)
	return nil
}

// printSpan renders one span line and recurses into its children.
func printSpan(s obs.SpanJSON, depth int) {
	fmt.Printf("%s%s", strings.Repeat("  ", depth), s.Name)
	if s.Addr != "" {
		fmt.Printf(" @ %s", s.Addr)
	}
	fmt.Printf("  %dµs", s.DurationUS)
	if s.Err != "" {
		fmt.Printf("  ERR %s", s.Err)
	}
	fmt.Println()
	for _, c := range s.Children {
		printSpan(c, depth+1)
	}
}

func floats(fields []string, want int) ([]float64, error) {
	if len(fields) != want {
		return nil, fmt.Errorf("want %d args", want)
	}
	out := make([]float64, want)
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
