package topk_test

import (
	"fmt"

	topk "repro"
)

// The paper's §1 motivating query: "find the best-rated hotels whose
// prices are between 100 and 200 dollars per night".
func Example() {
	idx := topk.New(topk.Config{})
	hotels := []struct{ price, rating float64 }{
		{142.50, 9.1}, {99.99, 8.4}, {180.00, 7.7}, {250.00, 9.9}, {120.00, 8.9},
	}
	for _, h := range hotels {
		idx.Insert(h.price, h.rating)
	}
	for _, r := range idx.TopK(100, 200, 2) {
		fmt.Printf("$%.2f rated %.1f\n", r.X, r.Score)
	}
	// Output:
	// $142.50 rated 9.1
	// $120.00 rated 8.9
}

// Deletions are first-class: the structure stays balanced and correct
// under arbitrary update interleavings at O(log_B n) amortized I/Os.
func ExampleIndex_Delete() {
	idx := topk.New(topk.Config{})
	idx.Insert(1, 10)
	idx.Insert(2, 20)
	idx.Insert(3, 30)
	idx.Delete(3, 30)
	fmt.Println(len(idx.TopK(0, 10, 5)), idx.TopK(0, 10, 1)[0].Score)
	// Output:
	// 2 20
}

// The I/O meter exposes the external-memory cost model directly: reads
// and writes are block transfers through an LRU pool of M/B frames.
func ExampleIndex_Stats() {
	idx := topk.New(topk.Config{BlockWords: 8, MemoryWords: 16})
	for i := 0; i < 64; i++ {
		idx.Insert(float64(i), float64(i*37%64))
	}
	idx.ResetStats()
	idx.DropCache()
	idx.TopK(10, 50, 3)
	s := idx.Stats()
	fmt.Println(s.Reads > 0, s.BlocksLive > 0)
	// Output:
	// true true
}
