package topk_test

import (
	"errors"
	"fmt"

	topk "repro"
)

// The paper's §1 motivating query: "find the best-rated hotels whose
// prices are between 100 and 200 dollars per night".
func Example() {
	idx, _ := topk.New(topk.Config{})
	hotels := []struct{ price, rating float64 }{
		{142.50, 9.1}, {99.99, 8.4}, {180.00, 7.7}, {250.00, 9.9}, {120.00, 8.9},
	}
	for _, h := range hotels {
		if err := idx.Insert(h.price, h.rating); err != nil {
			panic(err)
		}
	}
	for _, r := range idx.TopK(100, 200, 2) {
		fmt.Printf("$%.2f rated %.1f\n", r.X, r.Score)
	}
	// Output:
	// $142.50 rated 9.1
	// $120.00 rated 8.9
}

// Deletions are first-class: the structure stays balanced and correct
// under arbitrary update interleavings at O(log_B n) amortized I/Os.
func ExampleIndex_Delete() {
	idx, _ := topk.New(topk.Config{})
	idx.Insert(1, 10)
	idx.Insert(2, 20)
	idx.Insert(3, 30)
	idx.Delete(3, 30)
	fmt.Println(len(idx.TopK(0, 10, 5)), idx.TopK(0, 10, 1)[0].Score)
	// Output:
	// 2 20
}

// Misuse returns sentinel errors instead of panicking: duplicate
// positions, duplicate scores and non-finite coordinates are all
// rejected before anything is mutated.
func ExampleIndex_Insert() {
	idx, _ := topk.New(topk.Config{})
	idx.Insert(1, 10)
	err := idx.Insert(1, 20)
	fmt.Println(errors.Is(err, topk.ErrDuplicatePosition))
	err = idx.Insert(2, 10)
	fmt.Println(errors.Is(err, topk.ErrDuplicateScore))
	// Output:
	// true
	// true
}

// Both backends implement topk.Store, so serving code is written once.
// QueryBatch answers many ranges in one call — on Sharded it runs
// under a single topology lock.
func ExampleStore() {
	var st topk.Store
	st, _ = topk.NewSharded(topk.ShardedConfig{})
	st.ApplyBatch([]topk.BatchOp{
		{X: 1, Score: 10}, {X: 2, Score: 20}, {X: 3, Score: 30},
	})
	for _, res := range st.QueryBatch([]topk.Query{
		{X1: 0, X2: 10, K: 1},
		{X1: 2.5, X2: 10, K: 2},
	}) {
		fmt.Println(res)
	}
	// Output:
	// [{3 30}]
	// [{3 30}]
}

// The I/O meter exposes the external-memory cost model directly: reads
// and writes are block transfers through an LRU pool of M/B frames.
func ExampleIndex_Stats() {
	idx, _ := topk.New(topk.Config{BlockWords: 8, MemoryWords: 16})
	for i := 0; i < 64; i++ {
		idx.Insert(float64(i), float64(i*37%64))
	}
	idx.ResetStats()
	idx.DropCache()
	idx.TopK(10, 50, 3)
	s := idx.Stats()
	fmt.Println(s.Reads > 0, s.BlocksLive > 0)
	// Output:
	// true true
}
