package topk

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/point"
)

// This file is the v1 API surface shared by both backends: the Store
// interface, the batched-read Query type, and the sentinel errors of
// the error-returning update path. See DESIGN.md ("API v1") for the
// error-semantics table.

// Sentinel errors. Constructors report ErrConfig; Insert and the
// insert side of ApplyBatch report the point errors in a fixed check
// order: ErrInvalidPoint, then ErrDuplicatePosition, then
// ErrDuplicateScore. Match with errors.Is — returned errors may wrap
// these with context.
var (
	// ErrConfig reports an invalid Config/ShardedConfig.
	ErrConfig = errors.New("topk: invalid config")
	// ErrInvalidPoint rejects NaN or ±Inf coordinates.
	ErrInvalidPoint = core.ErrInvalidPoint
	// ErrDuplicatePosition rejects an insert at an occupied position
	// (the input is a set of reals — §1 footnote 1 of the paper gives
	// the standard reductions when positions are not naturally unique).
	ErrDuplicatePosition = core.ErrDuplicatePosition
	// ErrDuplicateScore rejects an insert whose score is already live
	// anywhere in the index — on Sharded this is checked fleet-wide,
	// not per shard.
	ErrDuplicateScore = core.ErrDuplicateScore
	// ErrNotFound reports a batched delete of an absent point.
	ErrNotFound = core.ErrNotFound
)

// Query is one read of a QueryBatch: the K highest-scoring points
// with position in [X1, X2].
type Query struct {
	X1, X2 float64
	K      int
}

// Store is the serving interface implemented by both *Index (one
// sequential EM machine) and *Sharded (a concurrent fleet of them).
// Callers written against Store — cmd/topkd, internal/workload, the
// examples — run unchanged on either backend, and every future
// backend (merged shards, remote shards, a caching tier) drops in
// behind it.
//
// Semantics are identical across implementations: TopK and QueryBatch
// return byte-identical answers on the same point set, updates obey
// the same error contract, and no method panics on caller input. The
// difference is operational — *Index is not safe for concurrent use
// (even queries mutate the buffer pool's LRU state), *Sharded is.
//
// Backend-specific surface stays off the interface and is probed with
// type assertions where needed: *Sharded additionally offers shard
// introspection (NumShards, Boundaries, Epoch, Splits, Merges,
// CheckInvariants) and the lifecycle controls (Rebalance, Maintain,
// Close) — cmd/topkd does exactly this for /v1/stats and /v1/metrics.
type Store interface {
	// Len returns the number of live points.
	Len() int
	// Insert adds (pos, score); nil on success, else ErrInvalidPoint,
	// ErrDuplicatePosition or ErrDuplicateScore. A failed insert
	// mutates nothing.
	Insert(pos, score float64) error
	// Delete removes (pos, score), reporting whether it was present.
	Delete(pos, score float64) bool
	// ApplyBatch applies a mixed batch of inserts and deletes,
	// returning one error per op (nil = applied; ErrNotFound for a
	// delete of an absent point; the Insert errors for rejected
	// inserts).
	ApplyBatch(ops []BatchOp) []error
	// TopK returns the k highest-scoring points with position in
	// [x1, x2] in descending score order; fewer if fewer qualify, nil
	// for k ≤ 0, inverted or NaN bounds. An oversized k is clamped to
	// the live size before anything allocates, on both backends and
	// in QueryBatch — an absurd caller k costs nothing beyond the
	// points actually reported.
	TopK(x1, x2 float64, k int) []Result
	// QueryBatch answers many queries at once, positionally aligned
	// with qs and byte-identical to calling TopK per query. On
	// Sharded the whole batch runs over one pinned topology snapshot
	// with per-shard fan-out; on Index it is a sequential loop.
	QueryBatch(qs []Query) [][]Result
	// Count returns the number of live points with position in [x1, x2].
	Count(x1, x2 float64) int
	// Stats snapshots the simulated disk I/O meter(s).
	Stats() Stats
	// ResetStats zeroes the read/write counters (space gauges kept).
	ResetStats()
	// DropCache evicts the buffer pool(s) so the next operations run
	// cold.
	DropCache()
}

// Both backends implement Store; compile-time assertion.
var (
	_ Store = (*Index)(nil)
	_ Store = (*Sharded)(nil)
)

// BatchOp is one operation of an ApplyBatch call: an insert of
// (X, Score), or a delete when Delete is set.
type BatchOp struct {
	Delete   bool
	X, Score float64
}

// validatePoints checks a bulk-load input against the paper's
// standing assumptions: finite coordinates, distinct positions,
// distinct scores.
func validatePoints(pts []Result) error {
	seenX := make(map[float64]struct{}, len(pts))
	seenS := make(map[float64]struct{}, len(pts))
	for i, r := range pts {
		if !(point.P{X: r.X, Score: r.Score}).Finite() {
			return fmt.Errorf("topk: load point %d (%v, %v): %w", i, r.X, r.Score, ErrInvalidPoint)
		}
		if _, dup := seenX[r.X]; dup {
			return fmt.Errorf("topk: load point %d (x=%v): %w", i, r.X, ErrDuplicatePosition)
		}
		if _, dup := seenS[r.Score]; dup {
			return fmt.Errorf("topk: load point %d (score=%v): %w", i, r.Score, ErrDuplicateScore)
		}
		seenX[r.X] = struct{}{}
		seenS[r.Score] = struct{}{}
	}
	return nil
}
