package topk_test

// Cluster correctness suite. Members are real HTTP servers (httptest)
// mounting internal/serve over local Sharded stores, so every test
// exercises the full wire path: gateway routing -> JSON -> member
// store -> JSON -> gateway merge. The oracle is always a single
// sequential Index over the same point set — the differential bar is
// byte-identical answers (reflect.DeepEqual), exactly like the
// Sharded ≡ Index suite.

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	topk "repro"
	"repro/internal/serve"
	"repro/internal/workload"
)

func testClusterCfg() topk.Config {
	return topk.Config{BlockWords: 64, ForcePolylog: true, PolylogF: 8, PolylogLeafCap: 2048}
}

// bandSpec declares one replica group of a test fleet.
type bandSpec struct {
	lo, hi   float64 // score band [lo, hi)
	replicas int
}

// testFleet is a booted in-process member fleet.
type testFleet struct {
	servers [][]*httptest.Server // by band, then replica
	addrs   []string
}

func (f *testFleet) close() {
	for _, band := range f.servers {
		for _, s := range band {
			s.Close()
		}
	}
}

// bootFleet starts one httptest member per replica of every band, each
// loaded with the band's slice of pts (replicas of a band are
// identical, as the cluster requires).
func bootFleet(t *testing.T, pts []topk.Result, bands []bandSpec) *testFleet {
	t.Helper()
	f := &testFleet{}
	for _, b := range bands {
		var bandPts []topk.Result
		for _, p := range pts {
			if b.lo <= p.Score && p.Score < b.hi {
				bandPts = append(bandPts, p)
			}
		}
		var replicas []*httptest.Server
		for r := 0; r < b.replicas; r++ {
			st, err := topk.LoadSharded(topk.ShardedConfig{Config: testClusterCfg(), Shards: 4}, bandPts)
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(serve.New(st, serve.Options{Lo: b.lo, Hi: b.hi}))
			replicas = append(replicas, srv)
			f.addrs = append(f.addrs, srv.URL)
		}
		f.servers = append(f.servers, replicas)
	}
	t.Cleanup(f.close)
	return f
}

// uniformResults draws n contract-valid points.
func uniformResults(seed int64, n int, domain float64) []topk.Result {
	out := make([]topk.Result, 0, n)
	for _, p := range workload.NewGen(seed).Uniform(n, domain) {
		out = append(out, topk.Result{X: p.X, Score: p.Score})
	}
	return out
}

// checkClusterQueries compares TopK per query AND one QueryBatch over
// all queries against the oracle, byte-identically.
func checkClusterQueries(t *testing.T, cl *topk.Cluster, oracle *topk.Index, qs []workload.QuerySpec) {
	t.Helper()
	batch := make([]topk.Query, len(qs))
	for i, q := range qs {
		batch[i] = topk.Query{X1: q.X1, X2: q.X2, K: q.K}
		got := cl.TopK(q.X1, q.X2, q.K)
		want := oracle.TopK(q.X1, q.X2, q.K)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TopK(%v, %v, %d): cluster diverged\ngot  %v\nwant %v", q.X1, q.X2, q.K, got, want)
		}
		if gc, wc := cl.Count(q.X1, q.X2), oracle.Count(q.X1, q.X2); gc != wc {
			t.Fatalf("Count(%v, %v) = %d, oracle %d", q.X1, q.X2, gc, wc)
		}
	}
	gotB := cl.QueryBatch(batch)
	wantB := oracle.QueryBatch(batch)
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatalf("QueryBatch diverged from oracle")
	}
}

// TestClusterMatchesIndex is the acceptance differential: a 3-node
// cluster (one member per score band) answers every read byte-
// identically to one sequential Index — including full-range queries
// whose answers interleave all three bands (every query whose k
// exceeds one band's contribution straddles node boundaries, because
// bands partition by SCORE and descending-score answers alternate
// across them) — and updates through the gateway keep it that way.
func TestClusterMatchesIndex(t *testing.T) {
	pts := uniformResults(91, 3000, 1e6)
	// Cut the score domain (Uniform scores are ~U[0,1)-scaled; derive
	// cuts from the data to get three equal thirds).
	cuts := scoreQuantiles(pts, 3)
	fleet := bootFleet(t, pts, []bandSpec{
		{math.Inf(-1), cuts[0], 1},
		{cuts[0], cuts[1], 1},
		{cuts[1], math.Inf(1), 1},
	})
	cl, err := topk.NewCluster(topk.ClusterConfig{Members: fleet.addrs, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	oracle, err := topk.Load(testClusterCfg(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Len() != oracle.Len() {
		t.Fatalf("Len = %d, oracle %d", cl.Len(), oracle.Len())
	}
	if g := cl.Groups(); g != 3 {
		t.Fatalf("Groups = %d, want 3", g)
	}

	gen := workload.NewGen(92)
	qs := gen.Queries(64, 1e6, 0.001, 0.05, 48)
	// Full-range and oversized-k queries interleave every band's
	// answers through the shared merge.
	qs = append(qs,
		workload.QuerySpec{X1: math.Inf(-1), X2: math.Inf(1), K: 100},
		workload.QuerySpec{X1: 0, X2: 1e6, K: len(pts) + 500},
		workload.QuerySpec{X1: 2e5, X2: 7e5, K: 1})
	checkClusterQueries(t, cl, oracle, qs)

	// Updates through the gateway: inserts and deletes mirror onto the
	// oracle; answers must stay identical.
	rng := rand.New(rand.NewSource(93))
	for i := 0; i < 300; i++ {
		if i%3 == 0 { // delete an existing point
			j := rng.Intn(len(pts))
			p := pts[j]
			found := cl.Delete(p.X, p.Score)
			wantFound := oracle.Delete(p.X, p.Score)
			if found != wantFound {
				t.Fatalf("Delete(%v, %v) = %v, oracle %v", p.X, p.Score, found, wantFound)
			}
			continue
		}
		p := topk.Result{X: 2e6 + float64(i), Score: 2 + float64(i)/1000}
		if err := cl.Insert(p.X, p.Score); err != nil {
			t.Fatalf("Insert(%v, %v): %v", p.X, p.Score, err)
		}
		if err := oracle.Insert(p.X, p.Score); err != nil {
			t.Fatalf("oracle Insert: %v", err)
		}
	}
	if cl.Len() != oracle.Len() {
		t.Fatalf("after churn: Len = %d, oracle %d", cl.Len(), oracle.Len())
	}
	checkClusterQueries(t, cl, oracle, qs)

	// Error parity with the local backends.
	if err := cl.Insert(math.NaN(), 1); !errors.Is(err, topk.ErrInvalidPoint) {
		t.Fatalf("NaN insert: %v, want ErrInvalidPoint", err)
	}
	// A duplicate of a PRELOADED score routes to its owning member,
	// whose local store rejects it authoritatively.
	if err := cl.Insert(-5e6, pts[7].Score); !errors.Is(err, topk.ErrDuplicateScore) {
		t.Fatalf("preloaded duplicate score: %v, want ErrDuplicateScore", err)
	}
	// Duplicates of GATEWAY-written points are rejected at the router,
	// position checked before score like every backend.
	if err := cl.Insert(3e6, 3.5); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert(3e6, 4.5); !errors.Is(err, topk.ErrDuplicatePosition) {
		t.Fatalf("duplicate position: %v, want ErrDuplicatePosition", err)
	}
	if err := cl.Insert(4e6, 3.5); !errors.Is(err, topk.ErrDuplicateScore) {
		t.Fatalf("duplicate score: %v, want ErrDuplicateScore", err)
	}
	if cl.Delete(999e6, 999) {
		t.Fatal("delete of absent point reported found")
	}
	// Batch outcomes: one applied insert, one duplicate, one absent
	// delete, one applied delete — per-op errors under the contract.
	errs := cl.ApplyBatch([]topk.BatchOp{
		{X: 5e6, Score: 5.5},
		{X: 5e6 + 1, Score: 5.5},
		{Delete: true, X: 123e6, Score: 77},
		{Delete: true, X: 5e6, Score: 5.5},
	})
	if errs[0] != nil || !errors.Is(errs[1], topk.ErrDuplicateScore) || !errors.Is(errs[2], topk.ErrNotFound) || errs[3] != nil {
		t.Fatalf("batch outcomes: %v", errs)
	}
	// Non-finite deletes answer ErrNotFound at the gateway (JSON could
	// not even carry them) without poisoning the valid ops sharing the
	// batch — exactly the Index/Sharded contract.
	errs = cl.ApplyBatch([]topk.BatchOp{
		{Delete: true, X: 2, Score: math.NaN()},
		{X: 6e6, Score: 6.5},
		{Delete: true, X: math.Inf(1), Score: 1},
	})
	if !errors.Is(errs[0], topk.ErrNotFound) || errs[1] != nil || !errors.Is(errs[2], topk.ErrNotFound) {
		t.Fatalf("non-finite delete batch outcomes: %v", errs)
	}
	if cl.Delete(3, math.Inf(-1)) {
		t.Fatal("delete of a non-finite point reported found")
	}
}

// scoreQuantiles returns cuts splitting pts into parts equal score
// bands.
func scoreQuantiles(pts []topk.Result, parts int) []float64 {
	scores := make([]float64, len(pts))
	for i, p := range pts {
		scores[i] = p.Score
	}
	sortFloats(scores)
	cuts := make([]float64, 0, parts-1)
	for i := 1; i < parts; i++ {
		cuts = append(cuts, scores[i*len(scores)/parts])
	}
	return cuts
}

func sortFloats(fs []float64) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j] < fs[j-1]; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// TestClusterNodeDownReadFailover: a band with two replicas keeps
// answering byte-identically after one replica dies mid-run — reads
// fail over to the alternate, the health checker ejects the dead node,
// and writes to the degraded band fail fast with ErrNodeDown while the
// healthy band keeps accepting.
func TestClusterNodeDownReadFailover(t *testing.T) {
	pts := uniformResults(95, 2000, 1e6)
	cuts := scoreQuantiles(pts, 2)
	fleet := bootFleet(t, pts, []bandSpec{
		{math.Inf(-1), cuts[0], 2}, // replicated band
		{cuts[0], math.Inf(1), 1},
	})
	cl, err := topk.NewCluster(topk.ClusterConfig{
		Members:        fleet.addrs,
		Timeout:        2 * time.Second,
		HealthInterval: 20 * time.Millisecond,
		EjectAfter:     2,
		EjectFor:       time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	oracle, err := topk.Load(testClusterCfg(), pts)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGen(96)
	qs := gen.Queries(32, 1e6, 0.001, 0.05, 32)
	qs = append(qs, workload.QuerySpec{X1: math.Inf(-1), X2: math.Inf(1), K: 200})
	checkClusterQueries(t, cl, oracle, qs)

	// Kill one replica of band 0 mid-run. Round-robin read preference
	// will keep landing on it, so correctness now depends on the
	// retry-on-alternate path.
	fleet.servers[0][0].Close()
	checkClusterQueries(t, cl, oracle, qs)
	if cl.ReadFailovers() == 0 {
		t.Fatal("no read failovers recorded despite a dead preferred replica")
	}
	// The background prober must eject the dead node on its own.
	deadline := time.Now().Add(10 * time.Second)
	for cl.Ejected() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if cl.Ejected() != 1 {
		t.Fatalf("Ejected = %d, want 1", cl.Ejected())
	}
	// With the node ejected, reads skip it (no growth in failovers
	// needed) and stay exact.
	checkClusterQueries(t, cl, oracle, qs)

	// Writes: the degraded band refuses (consistency-first — writing
	// around the dead replica would diverge the group); the healthy
	// band accepts.
	lowScore := cuts[0] - 1 // routes to band 0
	if err := cl.Insert(9e6, lowScore); !errors.Is(err, topk.ErrNodeDown) {
		t.Fatalf("write to degraded band: %v, want ErrNodeDown", err)
	}
	highScore := cuts[0] + 1 // routes to band 1
	if err := cl.Insert(9e6, highScore); err != nil {
		t.Fatalf("write to healthy band: %v", err)
	}
	if err := oracle.Insert(9e6, highScore); err != nil {
		t.Fatal(err)
	}
	checkClusterQueries(t, cl, oracle, qs)
}

// TestClusterWholeBandDown: when every replica of a band is
// unreachable, reads degrade to partial answers (the other bands'
// points, still exactly merged) instead of failing, and writes to the
// dark band report ErrNodeDown.
func TestClusterWholeBandDown(t *testing.T) {
	pts := uniformResults(97, 1000, 1e6)
	cuts := scoreQuantiles(pts, 2)
	fleet := bootFleet(t, pts, []bandSpec{
		{math.Inf(-1), cuts[0], 1},
		{cuts[0], math.Inf(1), 1},
	})
	cl, err := topk.NewCluster(topk.ClusterConfig{
		Members: fleet.addrs,
		Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Oracle over the surviving band only: the dark band contributes
	// nothing, the rest must still merge exactly.
	var highPts []topk.Result
	for _, p := range pts {
		if p.Score >= cuts[0] {
			highPts = append(highPts, p)
		}
	}
	survivors, err := topk.Load(testClusterCfg(), highPts)
	if err != nil {
		t.Fatal(err)
	}
	fleet.servers[0][0].Close()
	got := cl.TopK(math.Inf(-1), math.Inf(1), 100)
	want := survivors.TopK(math.Inf(-1), math.Inf(1), 100)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("partial read mismatch\ngot  %v\nwant %v", got, want)
	}
	if err := cl.Insert(42e6, cuts[0]-2); !errors.Is(err, topk.ErrNodeDown) {
		t.Fatalf("write to dark band: %v, want ErrNodeDown", err)
	}
	if cl.Delete(42e6, cuts[0]-2) {
		t.Fatal("delete routed to a dark band must report not found")
	}
	if err := cl.Insert(42e6, cuts[0]+2); err != nil {
		t.Fatalf("write to live band: %v", err)
	}
}

// TestClusterConfigValidation: the gateway refuses layouts it cannot
// serve correctly.
func TestClusterConfigValidation(t *testing.T) {
	if _, err := topk.NewCluster(topk.ClusterConfig{}); !errors.Is(err, topk.ErrConfig) {
		t.Fatalf("no members: %v, want ErrConfig", err)
	}
	// Unreachable member: construction must fail with ErrNodeDown, not
	// guess a layout.
	if _, err := topk.NewCluster(topk.ClusterConfig{
		Members: []string{"127.0.0.1:1"},
		Timeout: 500 * time.Millisecond,
	}); !errors.Is(err, topk.ErrNodeDown) {
		t.Fatalf("unreachable member: %v, want ErrNodeDown", err)
	}
	// A gap in the score tiling is a config error.
	pts := uniformResults(98, 200, 1e6)
	var loPts, hiPts []topk.Result
	for _, p := range pts {
		if p.Score < 0.3 {
			loPts = append(loPts, p)
		} else if p.Score >= 0.6 {
			hiPts = append(hiPts, p)
		}
	}
	mk := func(ps []topk.Result, lo, hi float64) *httptest.Server {
		st, err := topk.LoadSharded(topk.ShardedConfig{Config: testClusterCfg(), Shards: 2}, ps)
		if err != nil {
			t.Fatal(err)
		}
		return httptest.NewServer(serve.New(st, serve.Options{Lo: lo, Hi: hi}))
	}
	a := mk(loPts, math.Inf(-1), 0.3)
	b := mk(hiPts, 0.6, math.Inf(1))
	defer a.Close()
	defer b.Close()
	if _, err := topk.NewCluster(topk.ClusterConfig{
		Members: []string{a.URL, b.URL},
		Timeout: 5 * time.Second,
	}); err == nil {
		t.Fatal("tiling gap accepted")
	}
	// Replicas that disagree on their live count are refused too.
	c := mk(loPts[:len(loPts)-1], math.Inf(-1), 0.3)
	d := mk(hiPts, 0.3, math.Inf(1))
	e := mk(hiPts[:len(hiPts)/2], 0.3, math.Inf(1))
	defer c.Close()
	defer d.Close()
	defer e.Close()
	if _, err := topk.NewCluster(topk.ClusterConfig{
		Members: []string{c.URL, d.URL, e.URL},
		Timeout: 5 * time.Second,
	}); err == nil {
		t.Fatal("replica count mismatch accepted")
	}
}

// TestClusterConcurrentChurn is the randomized concurrency test: many
// goroutines insert, query and delete through one gateway (disjoint
// identity bands per worker, scores spread across every member) while
// readers fan out concurrently; after quiescing, the cluster must
// answer byte-identically to an Index holding exactly the surviving
// points. Run under -race in CI.
func TestClusterConcurrentChurn(t *testing.T) {
	pts := uniformResults(99, 600, 1e6)
	cuts := scoreQuantiles(pts, 3)
	fleet := bootFleet(t, pts, []bandSpec{
		{math.Inf(-1), cuts[0], 1},
		{cuts[0], cuts[1], 1},
		{cuts[1], math.Inf(1), 1},
	})
	cl, err := topk.NewCluster(topk.ClusterConfig{
		Members:        fleet.addrs,
		Timeout:        10 * time.Second,
		HealthInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers = 4
	const rounds = 40
	live := make([]map[topk.Result]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		live[w] = make(map[topk.Result]bool)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			var mine []topk.Result
			for r := 0; r < rounds; r++ {
				// Insert a small batch: identities disjoint per worker
				// (position ≡ w mod workers scaled; scores likewise),
				// spread across the full score domain so every member
				// sees traffic.
				ops := make([]topk.BatchOp, 0, 8)
				var fresh []topk.Result
				for j := 0; j < 4; j++ {
					id := r*4 + j
					p := topk.Result{
						X:     5e6 + float64(id*workers+w),
						Score: 10 + float64(id*workers+w)/100 + rng.Float64()/1e6,
					}
					ops = append(ops, topk.BatchOp{X: p.X, Score: p.Score})
					fresh = append(fresh, p)
				}
				for i, err := range cl.ApplyBatch(ops) {
					if err != nil {
						t.Errorf("worker %d insert %v: %v", w, ops[i], err)
						return
					}
				}
				mine = append(mine, fresh...)
				for _, p := range fresh {
					live[w][p] = true
				}
				// Concurrent reads: just must not race or error.
				cl.TopK(0, 1e7, 20)
				cl.QueryBatch([]topk.Query{{X1: 4e6, X2: 6e6, K: 10}, {X1: 0, X2: 1e6, K: 5}})
				// Delete one of our own live points now and then.
				if len(mine) > 0 && rng.Intn(2) == 0 {
					j := rng.Intn(len(mine))
					p := mine[j]
					if live[w][p] {
						if !cl.Delete(p.X, p.Score) {
							t.Errorf("worker %d: delete of own live point %v not found", w, p)
							return
						}
						live[w][p] = false
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: rebuild the oracle from the preload plus every
	// surviving gateway write, and demand exact agreement.
	all := append([]topk.Result(nil), pts...)
	for w := 0; w < workers; w++ {
		for p, ok := range live[w] {
			if ok {
				all = append(all, p)
			}
		}
	}
	oracle, err := topk.Load(testClusterCfg(), all)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Len() != oracle.Len() {
		t.Fatalf("Len = %d, oracle %d", cl.Len(), oracle.Len())
	}
	gen := workload.NewGen(100)
	qs := gen.Queries(48, 1e6, 0.001, 0.05, 32)
	qs = append(qs,
		workload.QuerySpec{X1: math.Inf(-1), X2: math.Inf(1), K: len(all)},
		workload.QuerySpec{X1: 4e6, X2: 6e6, K: 500})
	checkClusterQueries(t, cl, oracle, qs)
	if ej := cl.Ejected(); ej != 0 {
		t.Fatalf("healthy fleet reports %d ejected nodes", ej)
	}
	_ = fmt.Sprintf("%s", cl) // String must not race either
}

// logSink is a goroutine-safe log buffer (the health prober logs from
// its own goroutine).
type logSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logSink) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logSink) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestClusterEjectionRecoveryEpisodes: the ejections/recoveries
// counters track episodes, not probe failures — one bump per
// healthy→ejected transition (window extensions and post-expiry
// re-ejections during the same outage do not count), one per
// ejected→answering transition — and each transition emits a
// structured log event naming the node.
func TestClusterEjectionRecoveryEpisodes(t *testing.T) {
	pts := uniformResults(101, 500, 1e6)
	st, err := topk.LoadSharded(topk.ShardedConfig{Config: testClusterCfg(), Shards: 2}, pts)
	if err != nil {
		t.Fatal(err)
	}
	var down atomic.Bool
	inner := serve.New(st, serve.Options{Lo: math.Inf(-1), Hi: math.Inf(1)})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "induced outage", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	var sink logSink
	cl, err := topk.NewCluster(topk.ClusterConfig{
		Members:        []string{srv.URL},
		Timeout:        time.Second,
		HealthInterval: 5 * time.Millisecond,
		EjectAfter:     2,
		EjectFor:       200 * time.Millisecond,
		Logger:         slog.New(slog.NewTextHandler(&sink, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (ejections=%d recoveries=%d)",
					desc, cl.Ejections(), cl.Recoveries())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	if cl.Ejections() != 0 || cl.Recoveries() != 0 {
		t.Fatalf("fresh cluster: ejections=%d recoveries=%d, want 0/0", cl.Ejections(), cl.Recoveries())
	}

	// Episode 1: outage → ejection.
	down.Store(true)
	waitFor("first ejection", func() bool { return cl.Ejections() == 1 })
	if cl.Ejected() != 1 {
		t.Errorf("Ejected = %d, want 1 during the outage", cl.Ejected())
	}
	// The outage outlives the ejection window; continued failures extend
	// or renew the window but never open a new episode.
	time.Sleep(500 * time.Millisecond)
	if got := cl.Ejections(); got != 1 {
		t.Fatalf("ejections grew to %d during one continuous outage, want 1", got)
	}

	// Node answers again: the episode closes.
	down.Store(false)
	waitFor("recovery", func() bool { return cl.Recoveries() == 1 })
	waitFor("ejection cleared", func() bool { return cl.Ejected() == 0 })

	// Episode 2: a second outage is a second ejection.
	down.Store(true)
	waitFor("second ejection", func() bool { return cl.Ejections() == 2 })

	log := sink.String()
	for _, want := range []string{"member ejected", "member recovered", "consecutive_failures", "eject_deadline", srv.URL} {
		if !strings.Contains(log, want) {
			t.Errorf("structured log missing %q:\n%s", want, log)
		}
	}
}
