package topk

// Cross-module integration tests: the four top-k-capable structures
// (the §2 PST, the §3.3 polylog composition through core, the [14]
// baseline, and the RAM pointer-machine baseline) are run side by side
// on shared workloads and must agree with each other and with the
// brute-force oracle, across every workload shape the generators
// produce and across block sizes.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/point"
	"repro/internal/pst"
	"repro/internal/ram"
	"repro/internal/shengtao"
	"repro/internal/verify"
	"repro/internal/workload"
)

type engine struct {
	name   string
	insert func(point.P)
	delete func(point.P) bool
	query  func(x1, x2 float64, k int) []point.P
	maxK   int // 0 = unlimited
}

func allEngines(b int) []engine {
	d1 := em.NewDisk(em.Config{B: b, M: 64 * b})
	p := pst.New(d1, pst.Options{TrackTokens: true})
	d2 := em.NewDisk(em.Config{B: b, M: 64 * b})
	ix := core.New(d2, core.Options{Regime: core.RegimePolylog, PolylogF: 4, PolylogLeafCap: 64})
	d3 := em.NewDisk(em.Config{B: b, M: 64 * b})
	st := shengtao.New(d3, shengtao.Options{K: 64})
	rm := &ram.Tree{}
	// core.Insert returns errors under the v1 contract; the shared
	// workload is duplicate-free, so any error is a test failure.
	coreInsert := func(p point.P) {
		if err := ix.Insert(p); err != nil {
			panic(err)
		}
	}
	return []engine{
		{"pst", p.Insert, p.Delete, p.Query, 0},
		{"core", coreInsert, ix.Delete, ix.Query, 0},
		{"shengtao", st.Insert, st.Delete, st.Query, 64},
		{"ram", rm.Insert, rm.Delete, rm.Query, 0},
	}
}

func runSharedWorkload(t *testing.T, b int, pts []point.P, seed int64) {
	t.Helper()
	engines := allEngines(b)
	oracle := verify.NewOracle(nil)
	rng := rand.New(rand.NewSource(seed))

	for i, p := range pts {
		for _, e := range engines {
			e.insert(p)
		}
		oracle.Insert(p)
		// Interleave deletions.
		if i%3 == 2 && oracle.Len() > 10 {
			victim := oracle.Live()[rng.Intn(oracle.Len())]
			oracle.Delete(victim)
			for _, e := range engines {
				if !e.delete(victim) {
					t.Fatalf("%s: delete of live point failed at op %d", e.name, i)
				}
			}
		}
		if i%67 == 33 {
			x1 := rng.Float64() * 1e6
			x2 := x1 + rng.Float64()*5e5
			k := rng.Intn(40) + 1
			want := oracle.TopK(x1, x2, k)
			for _, e := range engines {
				if e.maxK > 0 && k > e.maxK {
					continue
				}
				got := e.query(x1, x2, k)
				if err := verify.DiffTopK(got, want); err != nil {
					t.Fatalf("%s at op %d, query [%v,%v] k=%d: %v", e.name, i, x1, x2, k, err)
				}
			}
		}
	}
}

func TestIntegrationUniform(t *testing.T) {
	gen := workload.NewGen(100)
	runSharedWorkload(t, 16, gen.Uniform(1200, 1e6), 101)
}

func TestIntegrationClustered(t *testing.T) {
	gen := workload.NewGen(102)
	runSharedWorkload(t, 16, gen.Clustered(1200, 5, 1e6), 103)
}

func TestIntegrationCorrelated(t *testing.T) {
	gen := workload.NewGen(104)
	runSharedWorkload(t, 16, gen.Correlated(1200, 1e6, 0.9), 105)
}

func TestIntegrationAdversarial(t *testing.T) {
	gen := workload.NewGen(106)
	pts := gen.Adversarial(1200, 1e6)
	runSharedWorkload(t, 16, pts, 107)
}

func TestIntegrationSmallBlocks(t *testing.T) {
	gen := workload.NewGen(108)
	runSharedWorkload(t, 8, gen.Uniform(800, 1e6), 109)
}

func TestIntegrationLargeBlocks(t *testing.T) {
	gen := workload.NewGen(110)
	runSharedWorkload(t, 128, gen.Uniform(1500, 1e6), 111)
}

// TestIntegrationHotelScenario drives the §1 motivating example through
// the public API end to end.
func TestIntegrationHotelScenario(t *testing.T) {
	gen := workload.NewGen(112)
	hotels, pts := gen.Hotels(3000)
	idx := mustLoad(t, Config{BlockWords: 32, ForcePolylog: true, PolylogF: 4, PolylogLeafCap: 128}, toResults(pts))
	oracle := verify.NewOracle(pts)

	got := toPoints(idx.TopK(100, 200, 10))
	want := oracle.TopK(100, 200, 10)
	if err := verify.DiffTopK(got, want); err != nil {
		t.Fatalf("hotel query: %v", err)
	}

	// Reprice 500 hotels and re-verify.
	for i := 0; i < 500; i++ {
		h := hotels[i]
		old := point.P{X: h.Price, Score: h.Rating}
		idx.Delete(old.X, old.Score)
		oracle.Delete(old)
		np := point.P{X: h.Price + 1e-7, Score: h.Rating}
		mustInsert(t, idx, np.X, np.Score)
		oracle.Insert(np)
	}
	for _, band := range [][2]float64{{50, 90}, {100, 200}, {140, 400}} {
		got := toPoints(idx.TopK(band[0], band[1], 10))
		if err := verify.DiffTopK(got, oracle.TopK(band[0], band[1], 10)); err != nil {
			t.Fatalf("band %v after repricing: %v", band, err)
		}
	}
}

// TestIntegrationEventWindow replays the sliding-window scenario and
// verifies window queries against the oracle.
func TestIntegrationEventWindow(t *testing.T) {
	gen := workload.NewGen(113)
	_, pts := gen.Events(4000)
	const window = 1500
	idx := mustNew(t, Config{BlockWords: 32, ForcePolylog: true, PolylogF: 4, PolylogLeafCap: 128})
	oracle := verify.NewOracle(nil)
	for i, p := range pts {
		mustInsert(t, idx, p.X, p.Score)
		oracle.Insert(p)
		if i >= window {
			old := pts[i-window]
			idx.Delete(old.X, old.Score)
			oracle.Delete(old)
		}
		if i%500 == 499 {
			now := p.X
			got := toPoints(idx.TopK(now-100, now, 8))
			if err := verify.DiffTopK(got, oracle.TopK(now-100, now, 8)); err != nil {
				t.Fatalf("window query at event %d: %v", i, err)
			}
		}
	}
	if idx.Len() != oracle.Len() {
		t.Fatalf("len %d vs %d", idx.Len(), oracle.Len())
	}
}

// TestIntegrationAdaptiveEndToEnd: the adaptive PST option composed into
// core answers identically on a shared stream.
func TestIntegrationAdaptiveEndToEnd(t *testing.T) {
	gen := workload.NewGen(114)
	pts := gen.Uniform(2000, 1e6)
	d1 := em.NewDisk(em.Config{B: 32, M: 64 * 32})
	plain := core.Bulk(d1, core.Options{Regime: core.RegimePolylog, PolylogF: 4, PolylogLeafCap: 64}, pts)
	d2 := em.NewDisk(em.Config{B: 32, M: 64 * 32})
	adaptive := core.Bulk(d2, core.Options{
		Regime: core.RegimePolylog, PolylogF: 4, PolylogLeafCap: 64,
		PST: pst.Options{Adaptive: true},
	}, pts)
	rng := rand.New(rand.NewSource(115))
	for i := 0; i < 80; i++ {
		x1 := rng.Float64() * 1e6
		x2 := x1 + rng.Float64()*4e5
		k := rng.Intn(600) + 1
		a := plain.Query(x1, x2, k)
		b := adaptive.Query(x1, x2, k)
		if !verify.SameSet(a, b) {
			t.Fatalf("adaptive diverged at query %d (k=%d): %d vs %d", i, k, len(b), len(a))
		}
	}
}
