package topk

import (
	"repro/internal/em"
	"repro/internal/point"
	"repro/internal/shard"
)

// ShardedConfig configures a Sharded index. The embedded Config
// applies to every shard's EM machine and Theorem 1 structure.
type ShardedConfig struct {
	Config
	// Shards caps the shard count (default 8). NewSharded starts from
	// one shard and splits as skew develops; LoadSharded pre-partitions
	// into this many quantile shards.
	Shards int
	// Skew is the split trigger: a shard splits when it holds more than
	// Skew times its fair share of the live set (default 2.0).
	Skew float64
	// MinSplit is the smallest shard eligible for splitting (default
	// 512), keeping small indexes on a single machine.
	MinSplit int
}

func (cfg ShardedConfig) options() shard.Options {
	if cfg.ForcePolylog && cfg.ForceBaseline {
		panic("topk: ForcePolylog and ForceBaseline are mutually exclusive")
	}
	return shard.Options{
		Disk:       em.Config{B: cfg.BlockWords, M: cfg.MemoryWords},
		Core:       coreOptions(cfg.Config),
		MaxShards:  cfg.Shards,
		SkewFactor: cfg.Skew,
		MinSplit:   cfg.MinSplit,
	}
}

// Sharded is a concurrent top-k index: a position-range-partitioned
// router over independent Index-equivalent shards, each a complete
// sequential EM machine with its own simulated disk. Unlike Index, a
// Sharded is safe for concurrent use — queries and updates on
// different shards proceed in parallel, and queries that straddle
// shard boundaries fan out and heap-merge, returning exactly what a
// single Index would. See internal/shard and DESIGN.md for the
// architecture.
type Sharded struct {
	r *shard.Router
}

// NewSharded returns an empty Sharded index with one shard; shards
// split automatically as data arrives.
func NewSharded(cfg ShardedConfig) *Sharded {
	return &Sharded{r: shard.New(cfg.options())}
}

// LoadSharded returns a Sharded index bulk-loaded with pts,
// pre-partitioned into cfg.Shards equal quantile shards.
func LoadSharded(cfg ShardedConfig, pts []Result) *Sharded {
	opt := cfg.options()
	ps := make([]point.P, len(pts))
	for i, r := range pts {
		ps[i] = point.P{X: r.X, Score: r.Score}
	}
	return &Sharded{r: shard.Bulk(opt, ps, opt.MaxShards)}
}

// Len returns the number of points currently stored.
func (s *Sharded) Len() int { return s.r.Len() }

// NumShards returns the current number of shards.
func (s *Sharded) NumShards() int { return s.r.NumShards() }

// Insert adds the point (pos, score). Positions and scores must be
// distinct across the live set, as for Index; inserting at an
// occupied position panics before anything is mutated, so the index
// stays consistent (recover and carry on, or pre-check with Count).
func (s *Sharded) Insert(pos, score float64) {
	s.r.Insert(point.P{X: pos, Score: score})
}

// Delete removes the point (pos, score), reporting whether it was
// present.
func (s *Sharded) Delete(pos, score float64) bool {
	return s.r.Delete(point.P{X: pos, Score: score})
}

// TopK returns the k highest-scoring points with position in [x1, x2]
// in descending score order — the same answer, in the same order, as
// Index.TopK on the same point set.
func (s *Sharded) TopK(x1, x2 float64, k int) []Result {
	pts := s.r.TopK(x1, x2, k)
	out := make([]Result, len(pts))
	for i, p := range pts {
		out[i] = Result{X: p.X, Score: p.Score}
	}
	return out
}

// Count returns the number of stored points with position in [x1, x2].
func (s *Sharded) Count(x1, x2 float64) int { return s.r.Count(x1, x2) }

// BatchOp is one operation of an ApplyBatch call: an insert of
// (X, Score), or a delete when Delete is set.
type BatchOp struct {
	Delete   bool
	X, Score float64
}

// ApplyBatch applies the operations as one concurrent batch: ops are
// grouped by target shard, each shard is locked once, and groups run
// in parallel. Within a shard, batch order is preserved; ops on
// different shards commute (disjoint position ranges), so the batch is
// equivalent to some sequential interleaving. Returns, per op, whether
// it took effect: presence for deletes; for inserts, whether the
// position was free (an insert at an occupied position is rejected
// with false rather than violating the set contract).
func (s *Sharded) ApplyBatch(ops []BatchOp) []bool {
	sops := make([]shard.Op, len(ops))
	for i, op := range ops {
		sops[i] = shard.Op{Delete: op.Delete, P: point.P{X: op.X, Score: op.Score}}
	}
	return s.r.ApplyBatch(sops)
}

// Rebalance re-partitions into up to target equal quantile shards,
// preserving contents exactly. Useful after a heavily skewed delete
// phase; inserts rebalance automatically via splitting.
func (s *Sharded) Rebalance(target int) { s.r.Rebalance(target) }

// Stats aggregates the I/O meters of every shard's disk (plus disks
// retired by splits and rebalances). BlocksPeak sums per-shard peaks,
// an upper bound on the simultaneous peak across the shard fleet.
func (s *Sharded) Stats() Stats {
	st := s.r.Stats()
	return Stats{Reads: st.Reads, Writes: st.Writes, BlocksLive: st.BlocksLive, BlocksPeak: st.BlocksPeak}
}

// ResetStats zeroes the aggregated read/write counters.
func (s *Sharded) ResetStats() { s.r.ResetStats() }

// DropCache evicts every shard's buffer pool so the next operations
// run cold.
func (s *Sharded) DropCache() { s.r.DropCache() }

// String summarizes the router topology.
func (s *Sharded) String() string { return s.r.String() }
