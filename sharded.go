package topk

import (
	"context"
	"time"

	"repro/internal/em"
	"repro/internal/point"
	"repro/internal/shard"
)

// ShardedConfig configures a Sharded index. The embedded Config
// applies to every shard's EM machine and Theorem 1 structure, with
// one deliberate difference: MemoryWords is the FLEET buffer-pool
// budget, divided evenly across shards whenever they are (re)built —
// at bulk load, split and rebalance time — so total fleet memory
// stays O(M) instead of growing with the shard count. Each machine
// keeps the model's floor of M ≥ 2B.
type ShardedConfig struct {
	Config
	// Shards caps the shard count (default 8). NewSharded starts from
	// one shard and splits as skew develops; LoadSharded pre-partitions
	// into this many quantile shards.
	Shards int
	// Skew is the split trigger: a shard splits when it holds more than
	// Skew times its fair share of the live set (default 2.0).
	Skew float64
	// MinSplit is the smallest shard eligible for splitting (default
	// 512), keeping small indexes on a single machine.
	MinSplit int
	// MinMerge is the merge trigger, the split's symmetric
	// counterpart: after a delete leaves a shard holding fewer than
	// MinMerge points — or less than 1/Skew of its fair share — the
	// shard is coalesced with its smaller adjacent neighbor, so a
	// delete-heavy workload cannot strand the fleet as many near-empty
	// shards each paying fixed per-shard overhead. Negative disables
	// merging. 0 selects auto mode: the floor starts at the default
	// MinSplit/2 and the maintenance loop re-derives it each pass from
	// observed per-shard space overhead (never below the default,
	// capped at MinSplit). Hysteresis is built in: a merge never
	// produces a shard the split policy would immediately cut back
	// apart.
	MinMerge int
	// MaintenanceInterval, when positive, starts a background
	// maintenance goroutine at construction: every interval it
	// refreshes the adaptive merge floor, coalesces underloaded
	// shards and splits overloaded ones, so a fleet left idle after
	// heavy deletes coalesces without waiting for the next update to
	// trip an inline lifecycle hook. Stop it with Close. 0 (the
	// default) disables the loop; Maintain still runs a pass on
	// demand.
	MaintenanceInterval time.Duration
}

func (cfg ShardedConfig) options() (shard.Options, error) {
	if err := cfg.Config.validate(); err != nil {
		return shard.Options{}, err
	}
	return shard.Options{
		Disk:                em.Config{B: cfg.BlockWords, M: cfg.MemoryWords},
		Core:                coreOptions(cfg.Config),
		MaxShards:           cfg.Shards,
		SkewFactor:          cfg.Skew,
		MinSplit:            cfg.MinSplit,
		MinMerge:            cfg.MinMerge,
		MaintenanceInterval: cfg.MaintenanceInterval,
	}, nil
}

// Sharded is a concurrent top-k index: a position-range-partitioned
// router over independent Index-equivalent shards, each a complete
// sequential EM machine with its own simulated disk. Unlike Index, a
// Sharded is safe for concurrent use — queries and updates on
// different shards proceed in parallel, and queries that straddle
// shard boundaries fan out and heap-merge, returning exactly what a
// single Index would. See internal/shard and DESIGN.md for the
// architecture.
type Sharded struct {
	r *shard.Router
}

// NewSharded returns an empty Sharded index with one shard (shards
// split automatically as data arrives), or ErrConfig on a
// contradictory config.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	opt, err := cfg.options()
	if err != nil {
		return nil, err
	}
	return &Sharded{r: shard.New(opt)}, nil
}

// LoadSharded returns a Sharded index bulk-loaded with pts,
// pre-partitioned into cfg.Shards equal quantile shards. Like Load,
// it validates pts against the input contract and reports the
// violated sentinel error.
func LoadSharded(cfg ShardedConfig, pts []Result) (*Sharded, error) {
	opt, err := cfg.options()
	if err != nil {
		return nil, err
	}
	if err := validatePoints(pts); err != nil {
		return nil, err
	}
	ps := make([]point.P, len(pts))
	for i, r := range pts {
		ps[i] = point.P{X: r.X, Score: r.Score}
	}
	return &Sharded{r: shard.Bulk(opt, ps, opt.MaxShards)}, nil
}

// Len returns the number of points currently stored.
func (s *Sharded) Len() int { return s.r.Len() }

// NumShards returns the current number of shards.
func (s *Sharded) NumShards() int { return s.r.NumShards() }

// Boundaries returns the current cut positions (len NumShards−1),
// ascending — introspection for operators and for tests that craft
// boundary-straddling queries. Like every read, it is served from the
// current topology snapshot and never contends with writers.
func (s *Sharded) Boundaries() []float64 { return s.r.Boundaries() }

// Insert adds the point (pos, score) under the same error contract as
// Index.Insert, with the duplicate-score check applied fleet-wide: an
// equal score on a different shard is rejected with ErrDuplicateScore
// instead of silently violating the distinct-score assumption. A
// failed insert mutates nothing, so the index stays consistent.
func (s *Sharded) Insert(pos, score float64) error {
	return s.r.Insert(point.P{X: pos, Score: score})
}

// Delete removes the point (pos, score), reporting whether it was
// present.
func (s *Sharded) Delete(pos, score float64) bool {
	return s.r.Delete(point.P{X: pos, Score: score})
}

// TopK returns the k highest-scoring points with position in [x1, x2]
// in descending score order — the same answer, in the same order, as
// Index.TopK on the same point set.
func (s *Sharded) TopK(x1, x2 float64, k int) []Result {
	return toResults(s.r.TopK(x1, x2, k))
}

// QueryBatch answers qs as one batch over a single pinned topology
// snapshot (no topology lock is held — see DESIGN.md on snapshot
// reads): work is grouped per shard (each shard's mutex taken once
// for the whole batch) and distinct shards run in parallel,
// amortizing the per-shard lock acquisitions and goroutine setup a
// loop of TopK calls would pay per query. Answers align positionally
// with qs and are byte-identical to sequential TopK calls.
func (s *Sharded) QueryBatch(qs []Query) [][]Result {
	if len(qs) == 0 {
		return nil
	}
	sqs := make([]shard.Query, len(qs))
	for i, q := range qs {
		sqs[i] = shard.Query{X1: q.X1, X2: q.X2, K: q.K}
	}
	lists := s.r.QueryBatch(sqs)
	out := make([][]Result, len(lists))
	for i, l := range lists {
		out[i] = toResults(l)
	}
	return out
}

// Count returns the number of stored points with position in [x1, x2].
func (s *Sharded) Count(x1, x2 float64) int { return s.r.Count(x1, x2) }

// ApplyBatch applies the operations as one concurrent batch: ops are
// grouped by target shard, each shard is locked once, and groups run
// in parallel. Within a shard, batch order is preserved; ops on
// different shards commute (disjoint position ranges), so the batch
// is equivalent to some sequential interleaving — but the
// interleaving is not chosen, so an insert reusing a score deleted on
// a different shard in the same batch may be rejected; issue such
// deletes in their own batch first. Returns one error per op under
// the Store contract (nil = applied, ErrNotFound for absent deletes,
// Insert sentinels for rejected inserts).
func (s *Sharded) ApplyBatch(ops []BatchOp) []error {
	sops := make([]shard.Op, len(ops))
	for i, op := range ops {
		sops[i] = shard.Op{Delete: op.Delete, P: point.P{X: op.X, Score: op.Score}}
	}
	return s.r.ApplyBatch(sops)
}

// Rebalance re-partitions into up to target equal quantile shards,
// preserving contents exactly. Inserts rebalance automatically via
// splitting and deletes via merging; Rebalance remains the on-demand
// full re-partition (e.g. to restore exact quantile cuts).
func (s *Sharded) Rebalance(target int) { s.r.Rebalance(target) }

// Maintain runs one synchronous maintenance pass — exactly what the
// background loop runs every MaintenanceInterval: refresh the
// adaptive merge floor, coalesce underloaded shards, split overloaded
// ones. It is how an idle fleet stranded by past deletes is repaired
// on demand, and how tests drive the lifecycle deterministically.
func (s *Sharded) Maintain() { s.r.Maintain() }

// Close stops the background maintenance goroutine, if one was
// started, and waits for it to exit. Idempotent; the index keeps
// serving after Close — only the timer-driven lifecycle passes stop.
func (s *Sharded) Close() error { return s.r.Close() }

// Epoch returns the current topology epoch. It increments every time
// a new topology snapshot is published (splits, merges, rebalances,
// stats resets), so operators can watch lifecycle activity cheaply;
// cmd/topkd exports it under /v1/metrics and GET /v1/epoch.
func (s *Sharded) Epoch() int64 { return s.r.Epoch() }

// WatchEpoch returns a channel that delivers the topology epoch: the
// current value immediately, then the latest epoch after every
// snapshot publish. Deliveries are coalesced — a slow receiver
// observes the newest epoch rather than a backlog, and a subscriber
// can never stall a lifecycle pass. The channel closes when ctx is
// cancelled. It is the minimal change feed gateways and caching tiers
// poll-free detect member topology changes with; cmd/topkd serves the
// same number under GET /v1/epoch for remote watchers.
func (s *Sharded) WatchEpoch(ctx context.Context) <-chan uint64 { return s.r.WatchEpoch(ctx) }

// Splits returns the number of automatic shard splits since creation.
func (s *Sharded) Splits() int64 { return s.r.Splits() }

// Merges returns the number of automatic shard merges since creation
// — together with Splits, the operator-facing lifecycle counters
// cmd/topkd reports under /v1/stats.
func (s *Sharded) Merges() int64 { return s.r.Merges() }

// CheckInvariants validates the shard topology (contiguous cover,
// count within bounds), every shard's internal structures, and the
// fleet-wide live count and score set. It is an operator/test
// diagnostic: it takes the topology write lock and scans every shard,
// so it is expensive and never called on serving paths.
func (s *Sharded) CheckInvariants() error { return s.r.CheckInvariants() }

// Stats aggregates the I/O meters of every shard's disk (plus the
// transfer counters of disks retired by splits, merges and
// rebalances). BlocksLive is the fleet-wide live-block total;
// BlocksPeak is the high-water mark of that fleet total as observed
// at Stats calls and topology changes — a footprint some instant
// actually held, not a sum of per-shard peaks from different
// instants.
func (s *Sharded) Stats() Stats {
	st := s.r.Stats()
	return Stats{Reads: st.Reads, Writes: st.Writes, BlocksLive: st.BlocksLive, BlocksPeak: st.BlocksPeak}
}

// ResetStats zeroes the aggregated read/write counters.
func (s *Sharded) ResetStats() { s.r.ResetStats() }

// DropCache evicts every shard's buffer pool so the next operations
// run cold.
func (s *Sharded) DropCache() { s.r.DropCache() }

// String summarizes the router topology.
func (s *Sharded) String() string { return s.r.String() }
